package core

import (
	"fmt"

	"declust/internal/array"
	"declust/internal/disk"
	"declust/internal/layout"
	"declust/internal/sim"
	"declust/internal/stats"
	"declust/internal/trace"
	"declust/internal/workload"
)

// SimConfig describes one simulation run. The zero values of optional
// fields select the paper's configuration (IBM 0661 disks, 4 KB units,
// CVSCAN bias 0.2, one reconstruction process).
type SimConfig struct {
	C, G int

	// Geom is the drive model; zero selects the full IBM 0661. Scale
	// (numerator/denominator, e.g. 1/10) shrinks the cylinder count to
	// shorten reconstruction sweeps; response-time behaviour per access
	// is unchanged and reconstruction time scales linearly.
	Geom               disk.Geometry
	ScaleNum, ScaleDen int
	UnitSectors        int     // stripe unit size in sectors; 0 = 8 (4 KB)
	CvscanBias         float64 // V(R) bias; 0 = 0.2
	MaxTuples          int     // block design table cap; 0 = default

	RatePerSec   float64 // user accesses per second
	ReadFraction float64 // fraction of user accesses that are reads
	AccessUnits  int     // access size in stripe units; 0 = 1 (4 KB)
	// HotDataFraction/HotAccessFraction skew the address distribution
	// (e.g. 0.2/0.8); zero means uniform as in the paper.
	HotDataFraction   float64
	HotAccessFraction float64
	Seed              int64

	// ParallelDataMap replaces the paper's stripe-index data mapping
	// with the round-robin mapping that satisfies maximal parallelism
	// (§4.2's future-work alternative).
	ParallelDataMap bool

	// DistributedSparing reserves a spare unit per parity stripe
	// (layout over a G+1 design) and reconstructs into spares on the
	// survivors instead of onto a replacement disk.
	DistributedSparing bool

	Algorithm  array.ReconAlgorithm
	ReconProcs int // 0 = 1

	// Extensions (paper §9 future work).
	ReconLowPriority          bool
	ReconThrottleCyclesPerSec float64

	// WarmupMS settles queues before measurement begins; MeasureMS is
	// the measurement window for fault-free and degraded runs.
	WarmupMS  float64
	MeasureMS float64

	// Source overrides the synthetic workload with a custom access
	// stream (e.g. a trace.Replayer). RatePerSec etc. are ignored when
	// set.
	Source workload.Source
	// CaptureTrace, when non-nil, records every measured user access
	// (arrival, completion, op) into the log for later replay.
	CaptureTrace *trace.Log
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Geom.Cylinders == 0 {
		c.Geom = disk.IBM0661()
	}
	if c.ScaleNum > 0 && c.ScaleDen > 0 {
		c.Geom = c.Geom.Scaled(c.ScaleNum, c.ScaleDen)
	}
	if c.UnitSectors == 0 {
		c.UnitSectors = 8
	}
	if c.CvscanBias == 0 {
		c.CvscanBias = 0.2
	}
	if c.ReconProcs == 0 {
		c.ReconProcs = 1
	}
	if c.WarmupMS == 0 {
		c.WarmupMS = 10_000
	}
	if c.MeasureMS == 0 {
		c.MeasureMS = 60_000
	}
	return c
}

// Metrics reports one run's results. Response-time fields are in
// milliseconds over user accesses arriving inside the measurement window.
type Metrics struct {
	MeanResponseMS float64
	StdResponseMS  float64
	P90ResponseMS  float64
	Requests       int

	// Reconstruction-specific (zero for fault-free/degraded runs).
	ReconTimeMS      float64
	ReconCycles      int64
	ReadPhaseMeanMS  float64
	ReadPhaseStdMS   float64
	WritePhaseMeanMS float64
	WritePhaseStdMS  float64

	// Alpha is the achieved declustering ratio of the layout used.
	Alpha float64
}

// runner wires an array to a workload generator and collects response
// times for requests arriving within [from, to) (to <= 0 means no upper
// bound yet).
type runner struct {
	eng     *sim.Engine
	arr     *array.Array
	gen     workload.Source
	resp    stats.Sample
	capture *trace.Log
	// classify, when set, receives every measured (start, end) pair;
	// the lifecycle runner uses it to split responses by array state.
	classify func(start, end float64)
	from     float64
	to       float64
	stopped  bool
}

func newRunner(cfg SimConfig) (*runner, error) {
	var m *Mapping
	var err error
	if cfg.DistributedSparing {
		m, err = NewSparedMapping(cfg.C, cfg.G, cfg.MaxTuples)
	} else {
		m, err = NewMapping(cfg.C, cfg.G, cfg.MaxTuples)
	}
	if err != nil {
		return nil, err
	}
	eng := sim.New()
	var mapper layout.DataMapper
	if cfg.ParallelDataMap {
		mapper = layout.NewParallelMapper(m.Layout)
	}
	arr, err := array.New(eng, array.Config{
		Layout:                    m.Layout,
		Geom:                      cfg.Geom,
		UnitSectors:               cfg.UnitSectors,
		CvscanBias:                cfg.CvscanBias,
		Algorithm:                 cfg.Algorithm,
		ReconProcs:                cfg.ReconProcs,
		SmallWriteOpt:             true,
		ReconLowPriority:          cfg.ReconLowPriority,
		ReconThrottleCyclesPerSec: cfg.ReconThrottleCyclesPerSec,
		DataMapper:                mapper,
		DistributedSparing:        cfg.DistributedSparing,
	})
	if err != nil {
		return nil, err
	}
	var src workload.Source = cfg.Source
	if src == nil {
		src, err = workload.New(workload.Config{
			RatePerSec:        cfg.RatePerSec,
			ReadFraction:      cfg.ReadFraction,
			DataUnits:         arr.DataUnits(),
			AccessUnits:       cfg.AccessUnits,
			HotDataFraction:   cfg.HotDataFraction,
			HotAccessFraction: cfg.HotAccessFraction,
			Seed:              cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
	}
	return &runner{eng: eng, arr: arr, gen: src, capture: cfg.CaptureTrace, to: -1}, nil
}

// pump issues the next arrival and reschedules itself until stopped.
func (r *runner) pump() {
	if r.stopped {
		return
	}
	delay, op := r.gen.Next()
	r.eng.Schedule(delay, func() {
		if r.stopped {
			return
		}
		start := r.eng.Now()
		record := func() {
			if start >= r.from && (r.to < 0 || start < r.to) {
				r.resp.Add(r.eng.Now() - start)
				if r.capture != nil {
					r.capture.Add(trace.Record{ArriveMS: start, DoneMS: r.eng.Now(), Op: op})
				}
				if r.classify != nil {
					r.classify(start, r.eng.Now())
				}
			}
		}
		switch {
		case op.Read && op.Count == 1:
			r.arr.Read(op.Unit, func(uint64) { record() })
		case op.Read:
			r.arr.ReadRange(op.Unit, op.Count, record)
		case op.Count == 1:
			r.arr.Write(op.Unit, record)
		default:
			r.arr.WriteRange(op.Unit, op.Count, record)
		}
		r.pump()
	})
}

func (r *runner) metrics() Metrics {
	return Metrics{
		MeanResponseMS: r.resp.Mean(),
		StdResponseMS:  r.resp.Std(),
		P90ResponseMS:  r.resp.Percentile(90),
		Requests:       r.resp.N(),
		Alpha:          r.arr.Layout().Alpha(),
	}
}

// RunFaultFree measures steady-state user response time with no failure
// (paper §6).
func RunFaultFree(cfg SimConfig) (Metrics, error) {
	cfg = cfg.withDefaults()
	r, err := newRunner(cfg)
	if err != nil {
		return Metrics{}, err
	}
	return r.timedWindow(cfg)
}

// RunDegraded measures steady-state user response time with one disk
// failed and no replacement installed (paper §7). The failed disk is 0;
// layouts balance load so the choice is immaterial.
func RunDegraded(cfg SimConfig) (Metrics, error) {
	cfg = cfg.withDefaults()
	r, err := newRunner(cfg)
	if err != nil {
		return Metrics{}, err
	}
	if err := r.arr.Fail(0); err != nil {
		return Metrics{}, err
	}
	return r.timedWindow(cfg)
}

func (r *runner) timedWindow(cfg SimConfig) (Metrics, error) {
	r.from = cfg.WarmupMS
	r.to = cfg.WarmupMS + cfg.MeasureMS
	r.pump()
	r.eng.RunUntil(r.to)
	r.stopped = true
	r.eng.Run() // drain in-flight operations so their responses count
	if err := r.arr.CheckConsistency(); err != nil {
		return Metrics{}, fmt.Errorf("core: post-run consistency check: %w", err)
	}
	return r.metrics(), nil
}

// RunReconstruction fails disk 0, installs a replacement, reconstructs it
// under user load, and reports both reconstruction time and the response
// time of user accesses arriving during reconstruction (paper §8). The
// warmup runs in degraded mode so queues reflect the failed state when the
// sweep begins.
func RunReconstruction(cfg SimConfig) (Metrics, error) {
	cfg = cfg.withDefaults()
	r, err := newRunner(cfg)
	if err != nil {
		return Metrics{}, err
	}
	if err := r.arr.Fail(0); err != nil {
		return Metrics{}, err
	}
	if !cfg.DistributedSparing {
		if err := r.arr.Replace(); err != nil {
			return Metrics{}, err
		}
	}
	r.from = cfg.WarmupMS
	r.pump()
	r.eng.RunUntil(cfg.WarmupMS)

	err = r.arr.Reconstruct(func() {
		r.to = r.eng.Now()
		r.stopped = true
	})
	if err != nil {
		return Metrics{}, err
	}
	r.eng.Run()
	if r.arr.Degraded() && !r.arr.Spared() {
		return Metrics{}, fmt.Errorf("core: reconstruction did not complete")
	}
	if err := r.arr.CheckConsistency(); err != nil {
		return Metrics{}, fmt.Errorf("core: post-reconstruction consistency check: %w", err)
	}
	m := r.metrics()
	m.ReconTimeMS = r.arr.ReconTimeMS()
	m.ReconCycles = r.arr.ReconCycles()
	m.ReadPhaseMeanMS = r.arr.ReadPhase().Mean()
	m.ReadPhaseStdMS = r.arr.ReadPhase().Std()
	m.WritePhaseMeanMS = r.arr.WritePhase().Mean()
	m.WritePhaseStdMS = r.arr.WritePhase().Std()
	return m, nil
}

// ReconCyclePhases reruns a reconstruction like RunReconstruction but
// reports the mean and deviation of the read and write phases over only
// the last `tail` cycles, as the paper's Table 8-1 does (tail = 300).
func ReconCyclePhases(cfg SimConfig, tail int) (readMean, readStd, writeMean, writeStd float64, err error) {
	cfg = cfg.withDefaults()
	r, err := newRunner(cfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := r.arr.Fail(0); err != nil {
		return 0, 0, 0, 0, err
	}
	if !cfg.DistributedSparing {
		if err := r.arr.Replace(); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	r.from = cfg.WarmupMS
	r.pump()
	r.eng.RunUntil(cfg.WarmupMS)
	if err := r.arr.Reconstruct(func() { r.stopped = true }); err != nil {
		return 0, 0, 0, 0, err
	}
	r.eng.Run()
	rw := r.arr.ReadPhase().Tail(tail)
	ww := r.arr.WritePhase().Tail(tail)
	return rw.Mean(), rw.Std(), ww.Mean(), ww.Std(), nil
}
