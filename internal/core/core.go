// Package core is the top of the library: it selects a parity layout for a
// requested array shape (C disks, parity stripe size G) and runs complete
// fault-free, degraded-mode, and reconstruction simulations, reporting the
// metrics the paper reports (user response time; reconstruction time;
// reconstruction cycle phases).
//
// G = C requests the left-symmetric RAID 5 layout; G < C requests a
// declustered layout built from the best available block design
// (blockdesign.Select), exactly as the paper configures its 21-disk array.
package core

import (
	"fmt"

	"declust/internal/blockdesign"
	"declust/internal/layout"
)

// Mapping bundles a chosen layout with its provenance.
type Mapping struct {
	Layout layout.Layout
	// Design is the block design behind a declustered layout; nil for
	// RAID 5.
	Design *blockdesign.Design
	// Exact is false when no feasible design existed at the requested G
	// and the closest feasible declustering ratio was substituted
	// (paper §4.3).
	Exact bool

	C, G int // G is the achieved parity stripe size
}

// NewMapping selects a layout for an array of c disks with parity stripes
// of g units. maxTuples bounds the block design table size (0 = default);
// the paper's efficient-mapping criterion rejects layouts beyond it.
func NewMapping(c, g, maxTuples int) (*Mapping, error) {
	if g == c {
		l, err := layout.NewRaid5(c)
		if err != nil {
			return nil, err
		}
		return &Mapping{Layout: l, Exact: true, C: c, G: g}, nil
	}
	sel, err := blockdesign.Select(c, g, maxTuples)
	if err != nil {
		return nil, err
	}
	l, err := layout.NewDeclustered(sel.Design)
	if err != nil {
		return nil, err
	}
	return &Mapping{Layout: l, Design: sel.Design, Exact: sel.Exact, C: c, G: sel.Design.K}, nil
}

// NewPQMapping selects a dual-parity (P+Q, RAID-6-style) layout: unit
// placement is exactly what NewMapping chooses for (c, g), but each stripe
// designates two of its G units as parity — P (XOR) and Q (GF(2^8)
// Reed–Solomon) — so the array tolerates any two disk failures. The
// balance criteria carry over to both parity units (layout.DualParity).
func NewPQMapping(c, g, maxTuples int) (*Mapping, error) {
	m, err := NewMapping(c, g, maxTuples)
	if err != nil {
		return nil, err
	}
	dp, err := layout.NewDualParity(m.Layout)
	if err != nil {
		return nil, err
	}
	m.Layout = dp
	return m, nil
}

// Alpha returns the achieved declustering ratio (G−1)/(C−1).
func (m *Mapping) Alpha() float64 { return m.Layout.Alpha() }

// Parities returns the layout's parity units per stripe: 1 (P) or 2 (P+Q).
func (m *Mapping) Parities() int { return layout.NumParities(m.Layout) }

// ParityOverhead returns the fraction of array capacity spent on
// redundancy: 1/G, or (parity + spare) 2/(G+1) for distributed-sparing
// layouts.
func (m *Mapping) ParityOverhead() float64 {
	if _, ok := m.Layout.(layout.SpareLayout); ok {
		return 2 / float64(m.G+1)
	}
	return float64(layout.NumParities(m.Layout)) / float64(m.G)
}

// Describe returns a one-line human-readable summary.
func (m *Mapping) Describe() string {
	code := ""
	if m.Parities() == 2 {
		code = " P+Q"
	}
	if m.Design == nil {
		return fmt.Sprintf("RAID 5 left-symmetric%s, C=%d (α=1.00, parity overhead %.1f%%)",
			code, m.C, 100*m.ParityOverhead())
	}
	p, _ := m.Design.Params()
	note := ""
	if !m.Exact {
		note = " [closest feasible α]"
	}
	return fmt.Sprintf("declustered%s, C=%d G=%d via %s: %s, parity overhead %.1f%%%s",
		code, m.C, m.G, m.Design.Source, p, 100*m.ParityOverhead(), note)
}

// Criteria evaluates the layout against the paper's §4.1 goodness criteria.
func (m *Mapping) Criteria() (layout.Criteria, error) {
	return layout.Check(m.Layout)
}

// NewSparedMapping selects a distributed-sparing layout: parity stripes of
// g units plus one spare unit each, built over a block design with tuple
// size g+1. Each disk then carries data, parity and spare space in equal
// measure, and reconstruction needs no replacement disk.
func NewSparedMapping(c, g, maxTuples int) (*Mapping, error) {
	if g+1 > c {
		return nil, fmt.Errorf("core: distributed sparing needs G+1 <= C, have G=%d C=%d", g, c)
	}
	sel, err := blockdesign.Select(c, g+1, maxTuples)
	if err != nil {
		return nil, err
	}
	if sel.Design.K != g+1 {
		return nil, fmt.Errorf("core: no feasible design with k=%d for spared G=%d (closest k=%d)",
			g+1, g, sel.Design.K)
	}
	l, err := layout.NewSpared(sel.Design)
	if err != nil {
		return nil, err
	}
	return &Mapping{Layout: l, Design: sel.Design, Exact: sel.Exact, C: c, G: g}, nil
}
