package core

import (
	"fmt"
	"math/rand"

	"declust/internal/fault"
	"declust/internal/stats"
)

// LifecycleConfig drives a long-horizon continuous-operation simulation:
// the array serves its user workload while disks fail at random, get
// replaced after a delay, and are reconstructed online — the scenario the
// paper's title describes. Disk lifetimes are exponential; MTTF is
// normally accelerated (hours, not years) so a simulation of minutes
// exercises many failure/repair cycles.
type LifecycleConfig struct {
	Sim SimConfig

	// MTTFHours is the mean time to failure of one disk in simulated
	// hours. Use small values (e.g. 0.5) to accelerate aging.
	MTTFHours float64
	// ReplacementDelayMS is the lag between a failure and the spare
	// being installed (0 = hot spare, installed immediately).
	ReplacementDelayMS float64
	// DurationMS is the simulated horizon.
	DurationMS float64
	// FailureSeed drives the failure process (workload keeps Sim.Seed).
	FailureSeed int64
	// WeibullShape, when not 0 or 1, draws failure inter-arrival times
	// from a Weibull with that shape instead of the exponential (< 1
	// models infant mortality, > 1 wear-out). The pooled arrival stream
	// keeps mean MTTF/C either way; this is an approximation of C
	// independent Weibull lifetimes, exact only in the exponential case.
	WeibullShape float64
}

// LifecycleReport summarizes a continuous-operation run.
type LifecycleReport struct {
	Failures int // disks failed (and repaired)

	// Second failures are real: a failure arrival during a degraded
	// window kills a second drive, and the array enumerates exactly
	// which stripes lost two units (declustering loses the fraction
	// α of the at-risk stripes; RAID 5 loses them all; the P+Q code
	// decodes every one, so StripesLost collapses to zero). The lost
	// data is restored out of band so the run continues.
	DoubleFailures  int   // surviving disks killed while degraded
	StripesAtRisk   int64 // stripes still exposed when the second disk died
	StripesLost     int64 // stripes with more dead units than the code corrects
	StripesSurvived int64 // double-dead stripes the P+Q code still decoded
	UnitsLost       int64 // units beyond redundancy, double failures and media errors alike

	// ReplacementFailures counts failure arrivals that landed on the
	// replacement disk mid-rebuild: the checkpoint is discarded (the
	// next drive arrives blank) and reconstruction restarts after a
	// fresh ReplacementDelayMS.
	ReplacementFailures int

	// DataLossEvents counts per-stripe loss events from media errors
	// (whole-disk double failures are summarized above instead).
	DataLossEvents int

	FaultFreeMS      float64
	DegradedMS       float64 // failed, replacement not yet installed
	ReconstructingMS float64

	// Availability is the fraction of time spent fault-free.
	Availability float64

	// Mean user response time by the array state at arrival.
	FaultFreeResponseMS float64
	DegradedResponseMS  float64
	ReconResponseMS     float64
	Requests            int
}

// RunLifecycle simulates the configured horizon and reports availability
// and per-state response times.
func RunLifecycle(cfg LifecycleConfig) (LifecycleReport, error) {
	if cfg.MTTFHours <= 0 {
		return LifecycleReport{}, fmt.Errorf("core: lifecycle needs positive MTTF, have %v", cfg.MTTFHours)
	}
	if cfg.DurationMS <= 0 {
		return LifecycleReport{}, fmt.Errorf("core: lifecycle needs positive duration, have %v", cfg.DurationMS)
	}
	if cfg.ReplacementDelayMS < 0 {
		return LifecycleReport{}, fmt.Errorf("core: negative replacement delay")
	}
	sim := cfg.Sim.withDefaults()
	r, err := newRunner(sim)
	if err != nil {
		return LifecycleReport{}, err
	}
	rng := rand.New(rand.NewSource(cfg.FailureSeed))
	mttfMS := cfg.MTTFHours * 3_600_000
	c := float64(r.arr.Layout().Disks())

	var rep LifecycleReport
	var ffResp, dgResp, rcResp stats.Sample

	// State tracking: 0 fault-free, 1 degraded (no recon yet), 2
	// reconstructing. stateSince marks the last transition; transitions
	// are kept so completions can be classified by their arrival state.
	state := 0
	stateSince := 0.0
	type transition struct {
		at    float64
		state int
	}
	history := []transition{{0, 0}}
	account := func(now float64) {
		span := now - stateSince
		switch state {
		case 0:
			rep.FaultFreeMS += span
		case 1:
			rep.DegradedMS += span
		case 2:
			rep.ReconstructingMS += span
		}
		stateSince = now
	}
	setState := func(s int) {
		account(r.eng.Now())
		state = s
		history = append(history, transition{r.eng.Now(), s})
	}
	stateAt := func(t float64) int {
		for i := len(history) - 1; i >= 0; i-- {
			if history[i].at <= t {
				return history[i].state
			}
		}
		return 0
	}

	// Response classification by arrival-time state.
	r.classify = func(start, end float64) {
		switch stateAt(start) {
		case 0:
			ffResp.Add(end - start)
		case 1:
			dgResp.Add(end - start)
		default:
			rcResp.Add(end - start)
		}
	}

	// installReplacement schedules the spare's arrival and the rebuild.
	// It is armed once per entry into the degraded state — on the first
	// failure, and again whenever the replacement itself dies.
	var installReplacement func()
	installReplacement = func() {
		r.eng.Schedule(cfg.ReplacementDelayMS, func() {
			if !r.arr.Degraded() {
				return // horizon policies could heal early; defensive
			}
			if err := r.arr.Replace(); err != nil {
				panic(err)
			}
			setState(2)
			err := r.arr.Reconstruct(func() {
				setState(0)
			})
			if err != nil {
				panic(err)
			}
		})
	}

	// Failure arrivals across C disks as one pooled stream at rate
	// C/MTTF, re-armed unconditionally after each arrival: disks keep
	// dying whatever state the array is in. Each arrival strikes a
	// uniformly random slot.
	var onFailure func()
	scheduleFailure := func() {
		delay := fault.LifetimeMS(rng, cfg.WeibullShape, mttfMS/c)
		r.eng.Schedule(delay, onFailure)
	}
	onFailure = func() {
		if r.eng.Now() >= cfg.DurationMS {
			return
		}
		scheduleFailure()
		d := rng.Intn(int(c))
		switch {
		case !r.arr.Degraded():
			rep.Failures++
			if err := r.arr.Fail(d); err != nil {
				panic(err) // unreachable: guarded by Degraded above
			}
			setState(1)
			installReplacement()
		case d == r.arr.FailedDisk():
			if !r.arr.Reconstructing() {
				return // the arrival struck the already-dead drive
			}
			// The replacement died mid-rebuild: back to degraded, the
			// checkpoint is void, and a fresh spare restarts the sweep.
			rep.ReplacementFailures++
			if err := r.arr.FailReplacement(); err != nil {
				panic(err)
			}
			setState(1)
			installReplacement()
		default:
			// A true second failure: enumerate the stripes that lost two
			// units, then carry on (the lost data is restored out of
			// band, as the consistency model requires).
			rep.DoubleFailures++
			df, err := r.arr.SecondFail(d)
			if err != nil {
				panic(err) // unreachable: d alive and distinct from failed
			}
			rep.StripesAtRisk += df.StripesAtRisk
			rep.StripesLost += df.StripesLost
			rep.StripesSurvived += df.StripesSurvived
		}
	}

	r.from = 0
	r.startSampling()
	r.startFaults()
	r.pump()
	scheduleFailure()
	r.eng.RunUntil(cfg.DurationMS)
	r.stopped = true
	r.stopFaults()
	account(r.eng.Now())
	// Drain in-flight work (reconstruction may still be running; let it
	// finish so the consistency check sees a quiesced array).
	r.eng.Run()
	if err := r.arr.CheckConsistency(); err != nil {
		return LifecycleReport{}, fmt.Errorf("core: lifecycle consistency: %w", err)
	}
	r.exportFinal()

	total := rep.FaultFreeMS + rep.DegradedMS + rep.ReconstructingMS
	if total > 0 {
		rep.Availability = rep.FaultFreeMS / total
	}
	rep.FaultFreeResponseMS = ffResp.Mean()
	rep.DegradedResponseMS = dgResp.Mean()
	rep.ReconResponseMS = rcResp.Mean()
	rep.Requests = ffResp.N() + dgResp.N() + rcResp.N()
	rep.UnitsLost = r.arr.FaultStats().LostUnits
	rep.DataLossEvents = len(r.arr.DataLosses())
	return rep, nil
}
