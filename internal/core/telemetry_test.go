package core

import (
	"testing"

	"declust/internal/telemetry"
)

// TestSpanTracingDoesNotPerturb is the tracing-off/on twin of
// TestInstrumentationDoesNotPerturb: span tracing observes completions and
// stamps simulated time but schedules nothing, so every result — including
// the engine event count — must be identical with and without it.
func TestSpanTracingDoesNotPerturb(t *testing.T) {
	bare, err := RunReconstruction(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(5)
	cfg.Spans = telemetry.New()
	traced, err := RunReconstruction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.MeanResponseMS != traced.MeanResponseMS ||
		bare.ReconTimeMS != traced.ReconTimeMS ||
		bare.Requests != traced.Requests ||
		bare.SimEndMS != traced.SimEndMS ||
		bare.EngineEvents != traced.EngineEvents {
		t.Errorf("span tracing perturbed the run:\nbare   %+v\ntraced %+v", bare, traced)
	}
}

// TestSpanStreamShape checks the traced reconstruction run emits the span
// structure the attribution analysis depends on: measured user roots
// matching the request count, recon-cycle roots matching the cycle count,
// disk segments tied to real drives, and well-formed parent/trace links.
func TestSpanStreamShape(t *testing.T) {
	cfg := smallCfg(5)
	tr := telemetry.New()
	cfg.Spans = tr
	m, err := RunReconstruction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	roots := map[uint64]telemetry.Span{}
	measured, cycles := 0, int64(0)
	for _, sp := range spans {
		if sp.EndMS < sp.StartMS {
			t.Fatalf("span ends before it starts: %+v", sp)
		}
		if sp.Parent == 0 {
			roots[sp.ID] = sp
			if sp.Measured {
				measured++
			}
			if sp.Name == telemetry.SpanReconCycle {
				cycles++
				if sp.Kind != telemetry.KindRecon {
					t.Fatalf("recon cycle with kind %q", sp.Kind)
				}
			}
		}
		if sp.Disk >= cfg.C {
			t.Fatalf("segment on nonexistent disk: %+v", sp)
		}
	}
	if measured != m.Requests {
		t.Errorf("%d measured root spans, want %d (one per measured request)", measured, m.Requests)
	}
	if cycles != int64(m.ReconCycles) {
		t.Errorf("%d recon-cycle spans, want %d", cycles, m.ReconCycles)
	}
	// Children must point at a root that completed, and the phases that
	// every reconstruction run exercises must all appear.
	seen := map[string]bool{}
	for _, sp := range spans {
		seen[sp.Name] = true
		if sp.Parent != 0 {
			if r, ok := roots[sp.Trace]; !ok {
				// The trace root may legitimately be missing only for
				// abandoned recon cycles, which never End.
				if sp.Kind != telemetry.KindRecon {
					t.Fatalf("user child span with no completed root: %+v", sp)
				}
			} else if r.Trace != sp.Trace {
				t.Fatalf("trace mismatch: %+v under %+v", sp, r)
			}
		}
	}
	for _, want := range []string{
		telemetry.SegQueue, telemetry.SegSeek, telemetry.SegRotate, telemetry.SegTransfer,
		telemetry.PhaseLockWait, telemetry.PhaseReconRead, telemetry.PhaseReconWrit,
	} {
		if !seen[want] {
			t.Errorf("span name %q never emitted", want)
		}
	}

	// The whole pipeline: attribution over a real run is self-consistent.
	a := telemetry.Attribute(spans)
	if a.Requests != m.Requests {
		t.Errorf("attribution requests %d, want %d", a.Requests, m.Requests)
	}
	if a.MeanResponseMS <= 0 || a.QueueMS < 0 || a.ServiceMS <= 0 {
		t.Errorf("degenerate attribution: %+v", a)
	}
	if a.InterferenceMS > a.QueueMS {
		t.Errorf("interference %v exceeds queue wait %v", a.InterferenceMS, a.QueueMS)
	}
	if a.InterferenceMS <= 0 {
		t.Error("reconstruction run shows zero rebuild interference")
	}
}

// TestSpanDeterminism: same seed, same config — byte-identical span logs.
func TestSpanDeterminism(t *testing.T) {
	do := func() []telemetry.Span {
		cfg := smallCfg(5)
		tr := telemetry.New()
		cfg.Spans = tr
		if _, err := RunReconstruction(cfg); err != nil {
			t.Fatal(err)
		}
		return tr.Spans()
	}
	a, b := do(), do()
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs between identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestOnLiveSnapshots drives the live-status ticker through a
// reconstruction run and checks the periodic snapshots are sane and
// deterministic.
func TestOnLiveSnapshots(t *testing.T) {
	do := func() []LiveStatus {
		cfg := smallCfg(5)
		var snaps []LiveStatus
		cfg.LiveEveryMS = 500
		cfg.OnLive = func(st LiveStatus) { snaps = append(snaps, st) }
		if _, err := RunReconstruction(cfg); err != nil {
			t.Fatal(err)
		}
		return snaps
	}
	snaps := do()
	if len(snaps) < 3 {
		t.Fatalf("only %d live snapshots for a multi-second run", len(snaps))
	}
	var sawRecon bool
	for i, st := range snaps {
		if i > 0 && st.SimMS <= snaps[i-1].SimMS {
			t.Fatalf("snapshot %d time went backwards: %v after %v", i, st.SimMS, snaps[i-1].SimMS)
		}
		if len(st.DiskUtil) != 21 || len(st.DiskQueue) != 21 {
			t.Fatalf("snapshot %d sized for %d/%d disks, want 21", i, len(st.DiskUtil), len(st.DiskQueue))
		}
		for d, u := range st.DiskUtil {
			if u < 0 || u > 1.000001 {
				t.Fatalf("snapshot %d disk %d utilization %v out of [0,1]", i, d, u)
			}
		}
		if st.ReconTotal > 0 {
			sawRecon = true
			if st.ReconDone < 0 || st.ReconDone > st.ReconTotal {
				t.Fatalf("snapshot %d recon %d/%d", i, st.ReconDone, st.ReconTotal)
			}
		}
	}
	if !sawRecon {
		t.Error("no snapshot reported reconstruction progress")
	}

	again := do()
	if len(again) != len(snaps) {
		t.Fatalf("snapshot counts differ between identical runs: %d vs %d", len(snaps), len(again))
	}
	for i := range snaps {
		if snaps[i].SimMS != again[i].SimMS || snaps[i].Requests != again[i].Requests {
			t.Fatalf("snapshot %d differs between identical runs", i)
		}
	}
}
