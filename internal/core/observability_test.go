package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"declust/internal/metrics"
)

// instrumentedCfg returns a fast reconstruction configuration with every
// instrumentation surface enabled: registry, time-series sampling, JSONL
// tracing, and progress callbacks.
func instrumentedCfg(events *bytes.Buffer) (SimConfig, *metrics.Registry) {
	cfg := smallCfg(5)
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	cfg.SampleEveryMS = 500
	cfg.Tracer = metrics.NewJSONL(events)
	return cfg, reg
}

// TestInstrumentationDeterminism runs the same reconstruction twice with
// full instrumentation and demands byte-identical exports: same Prometheus
// text, same CSV time series, same JSONL event stream, same final clock and
// engine event count. This is the repo's determinism contract extended to
// the observability layer — instrumentation may only read simulation state,
// never perturb it.
func TestInstrumentationDeterminism(t *testing.T) {
	type run struct {
		prom, csv, events string
		simEnd            float64
		engineEvents      uint64
		progressReports   int
	}
	do := func() run {
		var ev bytes.Buffer
		cfg, reg := instrumentedCfg(&ev)
		reports := 0
		cfg.ProgressEveryMS = 500
		cfg.OnProgress = func(p Progress) { reports++ }
		m, err := RunReconstruction(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Tracer.(*metrics.JSONL).Flush(); err != nil {
			t.Fatal(err)
		}
		var prom, csv bytes.Buffer
		if err := reg.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return run{
			prom: prom.String(), csv: csv.String(), events: ev.String(),
			simEnd: m.SimEndMS, engineEvents: m.EngineEvents,
			progressReports: reports,
		}
	}

	a, b := do(), do()
	if a.prom != b.prom {
		t.Error("Prometheus exports differ between identical runs")
	}
	if a.csv != b.csv {
		t.Error("CSV time-series exports differ between identical runs")
	}
	if a.events != b.events {
		t.Error("JSONL event streams differ between identical runs")
	}
	if a.simEnd != b.simEnd || a.engineEvents != b.engineEvents {
		t.Errorf("final state differs: sim end %v/%v ms, events %d/%d",
			a.simEnd, b.simEnd, a.engineEvents, b.engineEvents)
	}
	if a.progressReports == 0 || a.progressReports != b.progressReports {
		t.Errorf("progress reports %d/%d, want equal and nonzero",
			a.progressReports, b.progressReports)
	}

	// Spot-check the exports carry the expected content.
	if !strings.Contains(a.prom, "array_recon_cycles") ||
		!strings.Contains(a.prom, `recon_survivor_reads{disk="1"}`) ||
		!strings.Contains(a.prom, "user_response_ms_bucket") {
		t.Error("Prometheus export missing expected metrics")
	}
	if !strings.Contains(a.csv, "disk_util") {
		t.Error("CSV export missing disk utilization series")
	}
}

// TestInstrumentationDoesNotPerturb verifies that enabling the full
// instrumentation stack leaves the simulation's results untouched: the
// same seed with and without a registry/tracer must report identical user
// response times and reconstruction time.
func TestInstrumentationDoesNotPerturb(t *testing.T) {
	bare, err := RunReconstruction(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	var ev bytes.Buffer
	cfg, _ := instrumentedCfg(&ev)
	inst, err := RunReconstruction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.MeanResponseMS != inst.MeanResponseMS ||
		bare.ReconTimeMS != inst.ReconTimeMS ||
		bare.Requests != inst.Requests {
		t.Errorf("instrumentation perturbed the run: bare (mean %v, recon %v, n %d) vs instrumented (mean %v, recon %v, n %d)",
			bare.MeanResponseMS, bare.ReconTimeMS, bare.Requests,
			inst.MeanResponseMS, inst.ReconTimeMS, inst.Requests)
	}
	// The sampler adds engine events (the cadence ticks) but only reads
	// state; it may extend the drained clock to its next tick boundary,
	// never more than one sample period past the bare run's end.
	if inst.SimEndMS < bare.SimEndMS || inst.SimEndMS > bare.SimEndMS+cfg.SampleEveryMS {
		t.Errorf("sim end %v ms bare vs %v ms instrumented (cadence %v ms)",
			bare.SimEndMS, inst.SimEndMS, cfg.SampleEveryMS)
	}
}

// TestJSONLEventStream checks the traced reconstruction lifecycle: exactly
// one recon_start and one recon_done, cycle events with sane phases, and
// access events whose completion never precedes arrival.
func TestJSONLEventStream(t *testing.T) {
	var ev bytes.Buffer
	cfg, _ := instrumentedCfg(&ev)
	if _, err := RunReconstruction(cfg); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Tracer.(*metrics.JSONL).Flush(); err != nil {
		t.Fatal(err)
	}
	starts, dones, cycles, accesses := 0, 0, 0, 0
	for _, line := range strings.Split(strings.TrimSpace(ev.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		switch rec["ev"] {
		case metrics.EvReconStart:
			starts++
		case metrics.EvReconDone:
			dones++
		case metrics.EvReconCycle:
			cycles++
			if rec["read_ms"].(float64) <= 0 || rec["write_ms"].(float64) <= 0 {
				t.Fatalf("recon cycle with non-positive phase: %q", line)
			}
		case metrics.EvAccess:
			accesses++
			if rec["done_ms"].(float64) < rec["arrive_ms"].(float64) {
				t.Fatalf("access completes before arrival: %q", line)
			}
		}
	}
	if starts != 1 || dones != 1 {
		t.Errorf("recon start/done events = %d/%d, want 1/1", starts, dones)
	}
	if cycles == 0 || accesses == 0 {
		t.Errorf("cycles=%d accesses=%d, want both nonzero", cycles, accesses)
	}
}

// TestReconReadLoadBalance checks the instrumented survivor read counts
// show the declustered layout's even rebuild load: every surviving disk
// reads the same number of units and the failed disk reads none.
func TestReconReadLoadBalance(t *testing.T) {
	var ev bytes.Buffer
	cfg, reg := instrumentedCfg(&ev)
	if _, err := RunReconstruction(cfg); err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	// RunReconstruction fails disk 0; survivors are 1..20. The failed
	// slot's counter is exported as 0, every survivor's must be equal.
	var want string
	lines := 0
	for _, line := range strings.Split(prom.String(), "\n") {
		if !strings.HasPrefix(line, `recon_survivor_reads{disk="`) {
			continue
		}
		lines++
		val := line[strings.LastIndex(line, " ")+1:]
		if strings.HasPrefix(line, `recon_survivor_reads{disk="0"}`) {
			if val != "0" {
				t.Errorf("failed disk 0 read %s survivor units, want 0", val)
			}
			continue
		}
		if want == "" {
			want = val
		} else if val != want {
			t.Fatalf("uneven survivor read load: %q vs %q (line %q)", val, want, line)
		}
	}
	if lines != 21 {
		t.Fatalf("%d survivor read counters exported, want 21", lines)
	}
	if want == "0" || want == "" {
		t.Fatalf("survivor read counts missing or zero (got %q)", want)
	}
}
