package core

import "testing"

func lifecycleCfg() LifecycleConfig {
	sim := smallCfg(5)
	sim.ReconProcs = 8
	return LifecycleConfig{
		Sim:                sim,
		MTTFHours:          0.05, // ~180 s per disk: many failures per run
		ReplacementDelayMS: 2_000,
		DurationMS:         600_000, // 10 simulated minutes
		FailureSeed:        3,
	}
}

func TestLifecycleRunsThroughFailures(t *testing.T) {
	rep, err := RunLifecycle(lifecycleCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures < 2 {
		t.Fatalf("only %d failures in an accelerated 10-minute run", rep.Failures)
	}
	if rep.Requests < 1000 {
		t.Fatalf("only %d requests", rep.Requests)
	}
	total := rep.FaultFreeMS + rep.DegradedMS + rep.ReconstructingMS
	if total < 599_000 || total > 601_000 {
		t.Fatalf("state time accounting off: %v ms total", total)
	}
	if rep.Availability <= 0 || rep.Availability >= 1 {
		t.Fatalf("availability %v out of (0,1)", rep.Availability)
	}
	if rep.ReconstructingMS == 0 {
		t.Fatal("no reconstruction time accrued")
	}
}

func TestLifecycleResponseOrdering(t *testing.T) {
	rep, err := RunLifecycle(lifecycleCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Requests arriving during reconstruction see contention from the
	// sweep; fault-free requests see none.
	if rep.ReconResponseMS <= rep.FaultFreeResponseMS {
		t.Fatalf("recon response %.1f ms !> fault-free %.1f ms",
			rep.ReconResponseMS, rep.FaultFreeResponseMS)
	}
}

func TestLifecycleHotSpare(t *testing.T) {
	cfg := lifecycleCfg()
	cfg.ReplacementDelayMS = 0
	rep, err := RunLifecycle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With hot spares the degraded (awaiting-replacement) state is
	// never dwelled in.
	if rep.DegradedMS != 0 {
		t.Fatalf("hot-spare run accrued %v ms degraded time", rep.DegradedMS)
	}
}

func TestLifecycleSlowRepairLowersAvailability(t *testing.T) {
	fast := lifecycleCfg()
	fast.ReplacementDelayMS = 0

	slow := lifecycleCfg()
	slow.ReplacementDelayMS = 60_000
	slow.Sim.ReconProcs = 1
	slow.Sim.ReconThrottleCyclesPerSec = 20

	fr, err := RunLifecycle(fast)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := RunLifecycle(slow)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Availability >= fr.Availability {
		t.Fatalf("slow repair availability %.3f !< fast %.3f", sr.Availability, fr.Availability)
	}
}

func TestLifecycleValidation(t *testing.T) {
	cfg := lifecycleCfg()
	cfg.MTTFHours = 0
	if _, err := RunLifecycle(cfg); err == nil {
		t.Fatal("zero MTTF accepted")
	}
	cfg = lifecycleCfg()
	cfg.DurationMS = 0
	if _, err := RunLifecycle(cfg); err == nil {
		t.Fatal("zero duration accepted")
	}
	cfg = lifecycleCfg()
	cfg.ReplacementDelayMS = -1
	if _, err := RunLifecycle(cfg); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestLifecycleDeterministic(t *testing.T) {
	a, err := RunLifecycle(lifecycleCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLifecycle(lifecycleCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seeds, different reports:\n%+v\n%+v", a, b)
	}
}
