package core

import (
	"bytes"
	"strings"
	"testing"

	"declust/internal/metrics"
)

// faultyCfg returns smallCfg with every fault process turned on at
// accelerated rates.
func faultyCfg(g int) SimConfig {
	cfg := smallCfg(g)
	cfg.FaultSeed = 7
	// Heavily accelerated: the 1/50-scale drives hold only a few MB, so
	// per-GB rates must be huge to see arrivals in a 22-second run.
	cfg.LSERatePerGBHour = 100_000
	cfg.TransientRate = 0.02
	cfg.ScrubIntervalMS = 20
	return cfg
}

// TestDormantFaultConfigDoesNotPerturb checks the no-perturbation
// contract: a fault seed with zero rates must leave the run identical —
// same responses, same event count — to a config with no fault fields at
// all, and must not register any fault metric.
func TestDormantFaultConfigDoesNotPerturb(t *testing.T) {
	base, err := RunFaultFree(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(5)
	cfg.FaultSeed = 12345 // seed set, every rate zero
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	dormant, err := RunFaultFree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base != dormant {
		t.Fatalf("dormant fault config changed the run:\n%+v\n%+v", base, dormant)
	}
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fault_", "scrub_", "array_transient", "array_latent", "array_lost"} {
		if strings.Contains(prom.String(), name) {
			t.Fatalf("fault-free export contains %q metrics:\n%s", name, prom.String())
		}
	}
}

// TestFaultRunsAreDeterministic checks the determinism contract with every
// fault process active: identical config and seeds produce byte-identical
// metric exports and event traces.
func TestFaultRunsAreDeterministic(t *testing.T) {
	run := func() (Metrics, string, string) {
		var ev bytes.Buffer
		cfg := faultyCfg(5)
		reg := metrics.NewRegistry()
		cfg.Metrics = reg
		cfg.Tracer = metrics.NewJSONL(&ev)
		m, err := RunDegraded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Tracer.(*metrics.JSONL).Flush(); err != nil {
			t.Fatal(err)
		}
		var prom bytes.Buffer
		if err := reg.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		return m, prom.String(), ev.String()
	}
	m1, p1, e1 := run()
	m2, p2, e2 := run()
	if m1 != m2 {
		t.Fatalf("same seeds, different metrics:\n%+v\n%+v", m1, m2)
	}
	if p1 != p2 {
		t.Error("Prometheus exports differ between identical fault runs")
	}
	if e1 != e2 {
		t.Error("JSONL event streams differ between identical fault runs")
	}
	if m1.LSEArrivals == 0 {
		t.Error("accelerated LSE rate injected nothing")
	}
	if m1.TransientRetries == 0 {
		t.Error("transient rate caused no retries")
	}
}

// TestScrubRepairsDuringRun checks that the background scrubber finds and
// repairs latent errors under load: with scrubbing on, repairs happen and
// the array drains consistent (checked inside the run).
func TestScrubRepairsDuringRun(t *testing.T) {
	cfg := faultyCfg(5)
	cfg.TransientRate = 0 // isolate the LSE/scrub interaction
	m, err := RunFaultFree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.LSEArrivals == 0 {
		t.Fatal("no latent errors injected")
	}
	if m.ScrubErrorsFound == 0 {
		t.Error("scrubber surfaced no latent errors")
	}
	if m.LatentRepairs == 0 {
		t.Error("no latent error was repaired")
	}
	if m.LostUnits != 0 {
		t.Errorf("fault-free array lost %d units from single latent errors", m.LostUnits)
	}
}

// TestReconstructionUnderFaults runs the full rebuild with every fault
// process on: the sweep must complete and the post-run consistency check
// (inside RunReconstruction) must pass despite media errors and timeouts.
func TestReconstructionUnderFaults(t *testing.T) {
	cfg := faultyCfg(5)
	cfg.ReconProcs = 4
	m, err := RunReconstruction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.ReconTimeMS <= 0 {
		t.Fatalf("reconstruction did not complete: %+v", m)
	}
	if m.TransientRetries == 0 {
		t.Error("no transient retries during reconstruction run")
	}
}

// TestLifecycleRealSecondFailures drives the lifecycle hard enough that
// second failures land during degraded windows, and checks they are real:
// stripes are enumerated as lost (not merely counted as risks) and the
// declustered layout loses only a fraction of the at-risk stripes.
func TestLifecycleRealSecondFailures(t *testing.T) {
	cfg := lifecycleCfg()
	cfg.ReplacementDelayMS = 30_000 // long exposure windows
	rep, err := RunLifecycle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DoubleFailures == 0 {
		t.Fatal("no second failures in an accelerated run with 30 s swap lag")
	}
	if rep.StripesAtRisk == 0 {
		t.Fatal("second failures found no stripes at risk")
	}
	if rep.StripesLost == 0 {
		t.Fatal("second failures lost no stripes")
	}
	if rep.UnitsLost < 2*rep.StripesLost {
		t.Fatalf("%d units lost over %d lost stripes; want >= 2 per stripe",
			rep.UnitsLost, rep.StripesLost)
	}
	// Declustering's partial-loss advantage: on average a second failure
	// loses about α of the at-risk stripes, far from all of them.
	frac := float64(rep.StripesLost) / float64(rep.StripesAtRisk)
	if frac >= 0.75 {
		t.Errorf("declustered layout lost %.0f%% of at-risk stripes; expected a small fraction", 100*frac)
	}
}

// TestLifecycleReplacementFailureRestartsRebuild makes reconstruction slow
// enough that some failure arrivals land on the replacement itself, and
// checks the run survives the restart chain.
func TestLifecycleReplacementFailureRestartsRebuild(t *testing.T) {
	cfg := lifecycleCfg()
	cfg.Sim.ReconProcs = 1
	cfg.Sim.ReconThrottleCyclesPerSec = 10 // rebuild dominated by throttle
	cfg.MTTFHours = 0.02                   // ~72 s per disk
	rep, err := RunLifecycle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplacementFailures == 0 {
		t.Fatal("no replacement died mid-rebuild despite slow reconstruction")
	}
	if rep.Failures == 0 || rep.Availability <= 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
}

// TestLifecycleWithFaultInjectionDeterministic exercises the whole stack —
// disk failures, LSEs, scrubbing, transients, second failures — and checks
// the report is reproducible.
func TestLifecycleWithFaultInjectionDeterministic(t *testing.T) {
	cfg := lifecycleCfg()
	cfg.ReplacementDelayMS = 20_000
	cfg.Sim.FaultSeed = 11
	cfg.Sim.LSERatePerGBHour = 5_000
	cfg.Sim.TransientRate = 0.01
	cfg.Sim.ScrubIntervalMS = 50
	a, err := RunLifecycle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLifecycle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seeds, different lifecycle reports:\n%+v\n%+v", a, b)
	}
}

// TestLifecycleWeibullLifetimes checks the Weibull failure process drives
// the same machinery (shape > 1 models wear-out).
func TestLifecycleWeibullLifetimes(t *testing.T) {
	cfg := lifecycleCfg()
	cfg.WeibullShape = 2.0
	rep, err := RunLifecycle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures == 0 {
		t.Fatal("no failures under Weibull lifetimes")
	}
}
