// Package reliability estimates array data reliability by Monte Carlo
// simulation of the failure/repair lifecycle, validating (and relaxing the
// assumptions of) the closed-form MTTDL model in internal/analytic.
//
// The lifecycle: disks fail independently with exponential lifetimes; a
// failed disk is replaced and reconstructed over a repair window; if any
// other disk fails inside that window, the array loses data (it is
// single-failure-correcting). The paper's §2 point — that larger C hurts
// reliability while shorter reconstruction helps — falls straight out.
package reliability

import (
	"fmt"
	"math"
	"math/rand"
)

// Params describes the array lifecycle.
type Params struct {
	C         int     // disks in the array
	MTTFHours float64 // mean time to failure of one disk
	MTTRHours float64 // repair window (≈ measured reconstruction time)
	Seed      int64
}

func (p Params) validate() error {
	if p.C < 2 || p.MTTFHours <= 0 || p.MTTRHours <= 0 {
		return fmt.Errorf("reliability: invalid parameters %+v", p)
	}
	return nil
}

// Result summarizes a Monte Carlo estimate.
type Result struct {
	MTTDLHours float64 // mean time to data loss
	Trials     int
	// StdErrHours is the standard error of the MTTDL estimate.
	StdErrHours float64
}

// SimulateMTTDL runs `trials` independent lifetimes to data loss and
// returns the sample mean.
func SimulateMTTDL(p Params, trials int) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if trials < 1 {
		return Result{}, fmt.Errorf("reliability: need at least 1 trial")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		t := lifetime(p, rng)
		sum += t
		sumSq += t * t
	}
	n := float64(trials)
	mean := sum / n
	var stderr float64
	if trials > 1 {
		variance := (sumSq - n*mean*mean) / (n - 1)
		if variance > 0 {
			stderr = math.Sqrt(variance / n)
		}
	}
	return Result{MTTDLHours: mean, Trials: trials, StdErrHours: stderr}, nil
}

// lifetime simulates one array from new until data loss, returning hours.
func lifetime(p Params, rng *rand.Rand) float64 {
	t := 0.0
	c := float64(p.C)
	for {
		// Time to the first failure among C healthy disks.
		t += rng.ExpFloat64() * p.MTTFHours / c
		// During the repair window, C−1 disks remain; by memorylessness
		// the time to the next failure is exponential with rate
		// (C−1)/MTTF.
		next := rng.ExpFloat64() * p.MTTFHours / (c - 1)
		if next < p.MTTRHours {
			return t + next // second failure inside the window: data loss
		}
		t += p.MTTRHours // repaired; all C disks healthy again
	}
}

// DataLossProbability estimates the probability of data loss within
// `missionHours`, by Monte Carlo over `trials` lifetimes.
func DataLossProbability(p Params, missionHours float64, trials int) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if missionHours <= 0 || trials < 1 {
		return 0, fmt.Errorf("reliability: bad mission %v h / trials %d", missionHours, trials)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	losses := 0
	for i := 0; i < trials; i++ {
		if lifetime(p, rng) <= missionHours {
			losses++
		}
	}
	return float64(losses) / float64(trials), nil
}
