// Package reliability estimates array data reliability by Monte Carlo
// simulation of the failure/repair lifecycle, validating (and relaxing the
// assumptions of) the closed-form MTTDL model in internal/analytic.
//
// The lifecycle: disks fail independently with exponential lifetimes; a
// failed disk is replaced and reconstructed over a repair window; if any
// other disk fails inside that window, the array loses data (it is
// single-failure-correcting). The paper's §2 point — that larger C hurts
// reliability while shorter reconstruction helps — falls straight out.
package reliability

import (
	"fmt"
	"math"
	"math/rand"
)

// RepairDist selects the repair-time distribution.
type RepairDist int

const (
	// DeterministicRepair uses a fixed window of MTTRHours — the right
	// model when MTTR comes from a measured reconstruction time.
	DeterministicRepair RepairDist = iota
	// ExponentialRepair draws each window from an exponential with mean
	// MTTRHours — the classical Markov-model assumption, matching the
	// closed form in internal/analytic more exactly.
	ExponentialRepair
)

// Params describes the array lifecycle.
type Params struct {
	C         int     // disks in the array
	MTTFHours float64 // mean time to failure of one disk
	MTTRHours float64 // mean repair window (≈ measured reconstruction time)
	Seed      int64

	// RepairDist selects fixed or exponential repair windows.
	RepairDist RepairDist

	// LSERatePerDiskHour is the Poisson arrival rate of latent sector
	// errors per disk per hour; 0 disables the LSE pathway. A latent
	// error is harmless until a rebuild reads the disk that carries it:
	// then the stripe has lost two units and data is gone.
	LSERatePerDiskHour float64
	// ScrubIntervalHours bounds a latent error's lifetime: the scrubber
	// rereads every sector each interval and repairs errors from parity,
	// so at a random instant a sector's unverified age is Uniform(0, S).
	// 0 disables scrubbing — errors then persist until the next rebuild
	// reads every surviving disk in full.
	ScrubIntervalHours float64
}

func (p Params) validate() error {
	if p.C < 2 || p.MTTFHours <= 0 || p.MTTRHours <= 0 {
		return fmt.Errorf("reliability: invalid parameters %+v", p)
	}
	if p.RepairDist != DeterministicRepair && p.RepairDist != ExponentialRepair {
		return fmt.Errorf("reliability: unknown repair distribution %d", p.RepairDist)
	}
	if p.LSERatePerDiskHour < 0 || p.ScrubIntervalHours < 0 {
		return fmt.Errorf("reliability: negative LSE rate or scrub interval %+v", p)
	}
	return nil
}

// Result summarizes a Monte Carlo estimate.
type Result struct {
	MTTDLHours float64 // mean time to data loss
	Trials     int
	// StdErrHours is the standard error of the MTTDL estimate.
	StdErrHours float64
}

// SimulateMTTDL runs `trials` independent lifetimes to data loss and
// returns the sample mean.
func SimulateMTTDL(p Params, trials int) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if trials < 1 {
		return Result{}, fmt.Errorf("reliability: need at least 1 trial")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		t := lifetime(p, rng)
		sum += t
		sumSq += t * t
	}
	n := float64(trials)
	mean := sum / n
	var stderr float64
	if trials > 1 {
		variance := (sumSq - n*mean*mean) / (n - 1)
		if variance > 0 {
			stderr = math.Sqrt(variance / n)
		}
	}
	return Result{MTTDLHours: mean, Trials: trials, StdErrHours: stderr}, nil
}

// lifetime simulates one array from new until data loss, returning hours.
// Loss happens two ways: a second whole-disk failure inside the repair
// window, or a latent sector error on a surviving disk discovered by the
// rebuild's full read of the survivors (the stripe then has two dead
// units). Scrubbing shrinks the second pathway by bounding how long an
// error can lie latent.
func lifetime(p Params, rng *rand.Rand) float64 {
	t := 0.0
	tClean := 0.0 // when every disk's surface was last fully verified
	c := float64(p.C)
	for {
		// Time to the first failure among C healthy disks.
		t += rng.ExpFloat64() * p.MTTFHours / c

		repair := p.MTTRHours
		if p.RepairDist == ExponentialRepair {
			repair = rng.ExpFloat64() * p.MTTRHours
		}

		// During the repair window, C−1 disks remain; by memorylessness
		// the time to the next failure is exponential with rate
		// (C−1)/MTTF.
		next := rng.ExpFloat64() * p.MTTFHours / (c - 1)

		// The rebuild reads every survivor in full; any latent error it
		// hits is beyond parity's reach. P(all C−1 survivors clean)
		// depends on how long errors could accumulate: a scrubbed
		// sector's unverified age is Uniform(0, S) (so a survivor is
		// clean with probability E[e^{−λA}] = (1−e^{−λS})/(λS)); without
		// scrubbing errors persist since the last full verification.
		if p.LSERatePerDiskHour > 0 && rng.Float64() > pAllClean(p, t-tClean) {
			// The sweep reads the survivors throughout the window, so a
			// bad sector surfaces mid-rebuild on average.
			lse := repair / 2
			if next < lse {
				return t + next
			}
			return t + lse
		}

		if next < repair {
			return t + next // second failure inside the window: data loss
		}
		// Repaired. The rebuild verified every survivor and wrote the
		// replacement afresh, so the whole array is clean again.
		t += repair
		tClean = t
	}
}

// pAllClean returns the probability that none of the C−1 surviving disks
// carries a latent sector error at rebuild time, given the time since the
// last full verification of the array.
func pAllClean(p Params, sinceClean float64) float64 {
	lam := p.LSERatePerDiskHour
	var perDisk float64
	if s := p.ScrubIntervalHours; s > 0 {
		age := s
		if sinceClean < age {
			age = sinceClean // young array: nothing older than tClean
		}
		if age <= 0 {
			return 1
		}
		perDisk = (1 - math.Exp(-lam*age)) / (lam * age)
	} else {
		perDisk = math.Exp(-lam * sinceClean)
	}
	return math.Pow(perDisk, float64(p.C-1))
}

// DataLossProbability estimates the probability of data loss within
// `missionHours`, by Monte Carlo over `trials` lifetimes.
func DataLossProbability(p Params, missionHours float64, trials int) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if missionHours <= 0 || trials < 1 {
		return 0, fmt.Errorf("reliability: bad mission %v h / trials %d", missionHours, trials)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	losses := 0
	for i := 0; i < trials; i++ {
		if lifetime(p, rng) <= missionHours {
			losses++
		}
	}
	return float64(losses) / float64(trials), nil
}
