// Package reliability estimates array data reliability by Monte Carlo
// simulation of the failure/repair lifecycle, validating (and relaxing the
// assumptions of) the closed-form MTTDL model in internal/analytic.
//
// The lifecycle: disks fail independently with exponential lifetimes; a
// failed disk is replaced and reconstructed over a repair window; if any
// other disk fails inside that window, the array loses data (it is
// single-failure-correcting). The paper's §2 point — that larger C hurts
// reliability while shorter reconstruction helps — falls straight out.
//
// With Params.Parities = 2 the array carries the P+Q dual-parity code
// instead: data loss needs a THIRD failure while two repairs overlap (or
// a latent sector error surfacing under a two-erasure rebuild), which
// adds a factor of roughly MTTF/((C−2)·MTTR) to the MTTDL — the 2-fault
// term of the classical RAID-6 closed form.
package reliability

import (
	"fmt"
	"math"
	"math/rand"
)

// RepairDist selects the repair-time distribution.
type RepairDist int

const (
	// DeterministicRepair uses a fixed window of MTTRHours — the right
	// model when MTTR comes from a measured reconstruction time.
	DeterministicRepair RepairDist = iota
	// ExponentialRepair draws each window from an exponential with mean
	// MTTRHours — the classical Markov-model assumption, matching the
	// closed form in internal/analytic more exactly.
	ExponentialRepair
)

// Params describes the array lifecycle.
type Params struct {
	C         int     // disks in the array
	MTTFHours float64 // mean time to failure of one disk
	MTTRHours float64 // mean repair window (≈ measured reconstruction time)
	Seed      int64

	// RepairDist selects fixed or exponential repair windows.
	RepairDist RepairDist

	// LSERatePerDiskHour is the Poisson arrival rate of latent sector
	// errors per disk per hour; 0 disables the LSE pathway. A latent
	// error is harmless until a rebuild reads the disk that carries it:
	// then the stripe has lost two units and data is gone.
	LSERatePerDiskHour float64
	// ScrubIntervalHours bounds a latent error's lifetime: the scrubber
	// rereads every sector each interval and repairs errors from parity,
	// so at a random instant a sector's unverified age is Uniform(0, S).
	// 0 disables scrubbing — errors then persist until the next rebuild
	// reads every surviving disk in full.
	ScrubIntervalHours float64

	// Parities is the redundancy code: 0 or 1 models the paper's single
	// parity, 2 the P+Q dual-parity code, which survives any two
	// concurrent disk failures — loss then needs a third failure (or a
	// latent error) while two repair windows overlap.
	Parities int
}

// parities normalizes the Parities field (0 means single parity).
func (p Params) parities() int {
	if p.Parities == 0 {
		return 1
	}
	return p.Parities
}

func (p Params) validate() error {
	if p.C < 2 || p.MTTFHours <= 0 || p.MTTRHours <= 0 {
		return fmt.Errorf("reliability: invalid parameters %+v", p)
	}
	if p.RepairDist != DeterministicRepair && p.RepairDist != ExponentialRepair {
		return fmt.Errorf("reliability: unknown repair distribution %d", p.RepairDist)
	}
	if p.LSERatePerDiskHour < 0 || p.ScrubIntervalHours < 0 {
		return fmt.Errorf("reliability: negative LSE rate or scrub interval %+v", p)
	}
	switch p.parities() {
	case 1:
	case 2:
		if p.C < 3 {
			return fmt.Errorf("reliability: P+Q needs at least 3 disks, have %d", p.C)
		}
	default:
		return fmt.Errorf("reliability: %d parities; 1 (P) or 2 (P+Q) supported", p.Parities)
	}
	return nil
}

// Result summarizes a Monte Carlo estimate.
type Result struct {
	MTTDLHours float64 // mean time to data loss
	Trials     int
	// StdErrHours is the standard error of the MTTDL estimate.
	StdErrHours float64
}

// SimulateMTTDL runs `trials` independent lifetimes to data loss and
// returns the sample mean.
func SimulateMTTDL(p Params, trials int) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if trials < 1 {
		return Result{}, fmt.Errorf("reliability: need at least 1 trial")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		t := lifetime(p, rng)
		sum += t
		sumSq += t * t
	}
	n := float64(trials)
	mean := sum / n
	var stderr float64
	if trials > 1 {
		variance := (sumSq - n*mean*mean) / (n - 1)
		if variance > 0 {
			stderr = math.Sqrt(variance / n)
		}
	}
	return Result{MTTDLHours: mean, Trials: trials, StdErrHours: stderr}, nil
}

// lifetime simulates one array from new until data loss, returning hours.
// Loss happens two ways: a second whole-disk failure inside the repair
// window, or a latent sector error on a surviving disk discovered by the
// rebuild's full read of the survivors (the stripe then has two dead
// units). Scrubbing shrinks the second pathway by bounding how long an
// error can lie latent.
func lifetime(p Params, rng *rand.Rand) float64 {
	if p.parities() == 2 {
		return lifetime2(p, rng)
	}
	t := 0.0
	tClean := 0.0 // when every disk's surface was last fully verified
	c := float64(p.C)
	for {
		// Time to the first failure among C healthy disks.
		t += rng.ExpFloat64() * p.MTTFHours / c

		repair := p.repairWindow(rng)

		// During the repair window, C−1 disks remain; by memorylessness
		// the time to the next failure is exponential with rate
		// (C−1)/MTTF.
		next := rng.ExpFloat64() * p.MTTFHours / (c - 1)

		// The rebuild reads every survivor in full; any latent error it
		// hits is beyond parity's reach. P(all C−1 survivors clean)
		// depends on how long errors could accumulate: a scrubbed
		// sector's unverified age is Uniform(0, S) (so a survivor is
		// clean with probability E[e^{−λA}] = (1−e^{−λS})/(λS)); without
		// scrubbing errors persist since the last full verification.
		if p.LSERatePerDiskHour > 0 && rng.Float64() > pAllClean(p, p.C-1, t-tClean) {
			// The sweep reads the survivors throughout the window, so a
			// bad sector surfaces mid-rebuild on average.
			lse := repair / 2
			if next < lse {
				return t + next
			}
			return t + lse
		}

		if next < repair {
			return t + next // second failure inside the window: data loss
		}
		// Repaired. The rebuild verified every survivor and wrote the
		// replacement afresh, so the whole array is clean again.
		t += repair
		tClean = t
	}
}

// repairWindow draws one repair window from the configured distribution.
func (p Params) repairWindow(rng *rand.Rand) float64 {
	if p.RepairDist == ExponentialRepair {
		return rng.ExpFloat64() * p.MTTRHours
	}
	return p.MTTRHours
}

// lifetime2 simulates one P+Q array until data loss. With two-failure
// correction, a second whole-disk death inside a repair window is
// survivable: the array runs both rebuilds and only loses data if a THIRD
// disk dies — or a latent sector error surfaces under the two-erasure
// rebuild, giving some stripe a third dead unit — before either rebuild
// completes. Latent errors met while only one disk is down are corrected
// by the spare parity, so the single-degraded state is loss-free.
func lifetime2(p Params, rng *rand.Rand) float64 {
	t := 0.0
	tClean := 0.0
	c := float64(p.C)
	for {
		// Fault-free: time to the first failure among C healthy disks.
		t += rng.ExpFloat64() * p.MTTFHours / c
		rem := p.repairWindow(rng) // remaining repair of the oldest failure
		for {
			// One disk down. A latent error on a survivor is within the
			// code's power here, so only a second death matters.
			next := rng.ExpFloat64() * p.MTTFHours / (c - 1)
			if next >= rem {
				// Repaired first: the rebuild verified every survivor and
				// rewrote the replacement, so the array is clean again.
				t += rem
				tClean = t
				break
			}
			t += next
			rem -= next
			r2 := p.repairWindow(rng)
			// Two disks down: the code is saturated until one rebuild
			// completes. The exposure window ends at the earlier finish.
			danger := math.Min(rem, r2)
			loss := rng.ExpFloat64() * p.MTTFHours / (c - 2)
			if p.LSERatePerDiskHour > 0 && rng.Float64() > pAllClean(p, p.C-2, t-tClean) {
				// The two-erasure rebuild reads the survivors throughout
				// the window; a bad sector surfaces mid-rebuild on average.
				if lse := danger / 2; lse < loss {
					loss = lse
				}
			}
			if loss < danger {
				return t + loss
			}
			t += danger
			rem = math.Max(rem, r2) - danger
			if rem <= 0 {
				// Both rebuilds finished together (deterministic windows).
				tClean = t
				break
			}
			// Back to one down, rem left on the younger rebuild. The
			// completed rebuild verified the survivors, but the remaining
			// replacement is still filling; conservatively keep tClean.
		}
	}
}

// pAllClean returns the probability that none of the n surviving disks
// carries a latent sector error at rebuild time, given the time since the
// last full verification of the array.
func pAllClean(p Params, n int, sinceClean float64) float64 {
	lam := p.LSERatePerDiskHour
	var perDisk float64
	if s := p.ScrubIntervalHours; s > 0 {
		age := s
		if sinceClean < age {
			age = sinceClean // young array: nothing older than tClean
		}
		if age <= 0 {
			return 1
		}
		perDisk = (1 - math.Exp(-lam*age)) / (lam * age)
	} else {
		perDisk = math.Exp(-lam * sinceClean)
	}
	return math.Pow(perDisk, float64(n))
}

// DataLossProbability estimates the probability of data loss within
// `missionHours`, by Monte Carlo over `trials` lifetimes.
func DataLossProbability(p Params, missionHours float64, trials int) (float64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	if missionHours <= 0 || trials < 1 {
		return 0, fmt.Errorf("reliability: bad mission %v h / trials %d", missionHours, trials)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	losses := 0
	for i := 0; i < trials; i++ {
		if lifetime(p, rng) <= missionHours {
			losses++
		}
	}
	return float64(losses) / float64(trials), nil
}
