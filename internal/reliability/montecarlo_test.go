package reliability

import (
	"math"
	"testing"

	"declust/internal/analytic"
)

func TestSimulatedMTTDLMatchesAnalytic(t *testing.T) {
	// With MTTR << MTTF the closed form MTTF²/(C(C−1)·MTTR) is accurate;
	// the Monte Carlo must agree within a few standard errors.
	p := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 1}
	res, err := SimulateMTTDL(p, 3000)
	if err != nil {
		t.Fatal(err)
	}
	want := 150_000.0 * 150_000 / (21 * 20 * 2)
	diff := math.Abs(res.MTTDLHours - want)
	if diff > 4*res.StdErrHours {
		t.Fatalf("simulated MTTDL %.3g ± %.2g, analytic %.3g (off by %.1f σ)",
			res.MTTDLHours, res.StdErrHours, want, diff/res.StdErrHours)
	}
	// Cross-check against the analytic package itself.
	a, err := analytic.Reliability{C: 21, MTTFHours: 150_000, MTTRHours: 2}.MTTDLHours()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-want) > 1e-6 {
		t.Fatalf("analytic package disagrees with formula: %v vs %v", a, want)
	}
}

func TestShorterRepairImprovesReliability(t *testing.T) {
	// The whole reason reconstruction time matters (paper §2/§8).
	fast, err := SimulateMTTDL(Params{C: 21, MTTFHours: 150_000, MTTRHours: 0.5, Seed: 2}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SimulateMTTDL(Params{C: 21, MTTFHours: 150_000, MTTRHours: 4, Seed: 2}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	// 8x shorter repair should be roughly 8x the MTTDL.
	ratio := fast.MTTDLHours / slow.MTTDLHours
	if ratio < 5 || ratio > 12 {
		t.Fatalf("MTTDL ratio %.1f for 8x repair speedup, want ~8", ratio)
	}
}

func TestMoreDisksHurtReliability(t *testing.T) {
	small, err := SimulateMTTDL(Params{C: 11, MTTFHours: 150_000, MTTRHours: 2, Seed: 3}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	big, err := SimulateMTTDL(Params{C: 41, MTTFHours: 150_000, MTTRHours: 2, Seed: 3}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if big.MTTDLHours >= small.MTTDLHours {
		t.Fatalf("41 disks MTTDL %.3g not below 11 disks %.3g", big.MTTDLHours, small.MTTDLHours)
	}
}

func TestDataLossProbability(t *testing.T) {
	p := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 4}
	const mission = 10 * 365.25 * 24
	got, err := DataLossProbability(p, mission, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// Exponential approximation: 1 − exp(−mission/MTTDL).
	mttdl := 150_000.0 * 150_000 / (21 * 20 * 2)
	want := 1 - math.Exp(-mission/mttdl)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("loss probability %.3f, want ~%.3f", got, want)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	p := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 9}
	a, _ := SimulateMTTDL(p, 200)
	b, _ := SimulateMTTDL(p, 200)
	if a != b {
		t.Fatal("same seed, different results")
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{C: 1, MTTFHours: 1, MTTRHours: 1},
		{C: 5, MTTFHours: 0, MTTRHours: 1},
		{C: 5, MTTFHours: 1, MTTRHours: 0},
	}
	for i, p := range bad {
		if _, err := SimulateMTTDL(p, 10); err == nil {
			t.Errorf("params %d accepted", i)
		}
	}
	if _, err := SimulateMTTDL(Params{C: 5, MTTFHours: 1, MTTRHours: 1}, 0); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := DataLossProbability(Params{C: 5, MTTFHours: 1, MTTRHours: 1}, 0, 10); err == nil {
		t.Error("zero mission accepted")
	}
}
