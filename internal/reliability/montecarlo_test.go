package reliability

import (
	"math"
	"testing"

	"declust/internal/analytic"
)

func TestSimulatedMTTDLMatchesAnalytic(t *testing.T) {
	// With MTTR << MTTF the closed form MTTF²/(C(C−1)·MTTR) is accurate;
	// the Monte Carlo must agree within a few standard errors.
	p := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 1}
	res, err := SimulateMTTDL(p, 3000)
	if err != nil {
		t.Fatal(err)
	}
	want := 150_000.0 * 150_000 / (21 * 20 * 2)
	diff := math.Abs(res.MTTDLHours - want)
	if diff > 4*res.StdErrHours {
		t.Fatalf("simulated MTTDL %.3g ± %.2g, analytic %.3g (off by %.1f σ)",
			res.MTTDLHours, res.StdErrHours, want, diff/res.StdErrHours)
	}
	// Cross-check against the analytic package itself.
	a, err := analytic.Reliability{C: 21, MTTFHours: 150_000, MTTRHours: 2}.MTTDLHours()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-want) > 1e-6 {
		t.Fatalf("analytic package disagrees with formula: %v vs %v", a, want)
	}
}

func TestExponentialRepairMatchesAnalytic(t *testing.T) {
	// The exponential-repair Markov model's exact MTTDL is
	// ((2C−1)λ+μ)/(C(C−1)λ²) with λ=1/MTTF, μ=1/MTTR; for MTTR << MTTF
	// it collapses to the same closed form the analytic package uses.
	// Cross-validate the simulation against both within tolerance.
	p := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 5, RepairDist: ExponentialRepair}
	res, err := SimulateMTTDL(p, 4000)
	if err != nil {
		t.Fatal(err)
	}
	lam, mu := 1/p.MTTFHours, 1/p.MTTRHours
	exact := ((2*21-1)*lam + mu) / (21 * 20 * lam * lam)
	if diff := math.Abs(res.MTTDLHours - exact); diff > 4*res.StdErrHours {
		t.Fatalf("exponential-repair MTTDL %.3g ± %.2g, Markov exact %.3g (off by %.1f σ)",
			res.MTTDLHours, res.StdErrHours, exact, diff/res.StdErrHours)
	}
	a, err := analytic.Reliability{C: 21, MTTFHours: 150_000, MTTRHours: 2}.MTTDLHours()
	if err != nil {
		t.Fatal(err)
	}
	// The approximation itself is within a fraction of a percent here;
	// the simulation should sit within 5% of it.
	if rel := math.Abs(res.MTTDLHours-a) / a; rel > 0.05 {
		t.Fatalf("exponential-repair MTTDL %.3g vs closed form %.3g (%.1f%% off)",
			res.MTTDLHours, a, 100*rel)
	}
}

func TestLatentErrorsLowerMTTDL(t *testing.T) {
	base := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 6}
	clean, err := SimulateMTTDL(base, 2000)
	if err != nil {
		t.Fatal(err)
	}
	lsy := base
	lsy.LSERatePerDiskHour = 1e-5
	lossy, err := SimulateMTTDL(lsy, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if lossy.MTTDLHours >= clean.MTTDLHours/2 {
		t.Fatalf("LSEs barely moved MTTDL: %.3g vs clean %.3g",
			lossy.MTTDLHours, clean.MTTDLHours)
	}
}

func TestScrubbingRaisesMTTDL(t *testing.T) {
	// The acceptance claim: at a fixed LSE rate, scrubbing measurably
	// raises MTTDL by bounding how long errors lie latent.
	base := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 7, LSERatePerDiskHour: 1e-5}
	unscrubbed, err := SimulateMTTDL(base, 2000)
	if err != nil {
		t.Fatal(err)
	}
	scrubbed := base
	scrubbed.ScrubIntervalHours = 168 // weekly
	s, err := SimulateMTTDL(scrubbed, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if s.MTTDLHours < 2*unscrubbed.MTTDLHours {
		t.Fatalf("weekly scrub MTTDL %.3g not measurably above unscrubbed %.3g",
			s.MTTDLHours, unscrubbed.MTTDLHours)
	}
	// More frequent scrubbing helps more.
	daily := base
	daily.ScrubIntervalHours = 24
	d, err := SimulateMTTDL(daily, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if d.MTTDLHours <= s.MTTDLHours {
		t.Fatalf("daily scrub MTTDL %.3g not above weekly %.3g", d.MTTDLHours, s.MTTDLHours)
	}
}

func TestShorterRepairImprovesReliability(t *testing.T) {
	// The whole reason reconstruction time matters (paper §2/§8).
	fast, err := SimulateMTTDL(Params{C: 21, MTTFHours: 150_000, MTTRHours: 0.5, Seed: 2}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SimulateMTTDL(Params{C: 21, MTTFHours: 150_000, MTTRHours: 4, Seed: 2}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	// 8x shorter repair should be roughly 8x the MTTDL.
	ratio := fast.MTTDLHours / slow.MTTDLHours
	if ratio < 5 || ratio > 12 {
		t.Fatalf("MTTDL ratio %.1f for 8x repair speedup, want ~8", ratio)
	}
}

func TestMoreDisksHurtReliability(t *testing.T) {
	small, err := SimulateMTTDL(Params{C: 11, MTTFHours: 150_000, MTTRHours: 2, Seed: 3}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	big, err := SimulateMTTDL(Params{C: 41, MTTFHours: 150_000, MTTRHours: 2, Seed: 3}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if big.MTTDLHours >= small.MTTDLHours {
		t.Fatalf("41 disks MTTDL %.3g not below 11 disks %.3g", big.MTTDLHours, small.MTTDLHours)
	}
}

func TestDualParityRaisesMTTDL(t *testing.T) {
	// Exponential repair makes the P+Q lifecycle a Markov chain with
	// states counting dead disks (absorption at three): failures arrive
	// at (C−k)λ from state k, repairs complete at kμ. The expected
	// absorption time from all-healthy solves to
	//   T2 = (1 + 2μK)/((C−2)λ), K = (1 + μ/(Cλ))/((C−1)λ),
	//   T0 = 1/(Cλ) + K + T2,
	// and the simulation must agree within a few standard errors.
	dual := Params{C: 21, MTTFHours: 10_000, MTTRHours: 10, Seed: 11,
		RepairDist: ExponentialRepair, Parities: 2}
	d, err := SimulateMTTDL(dual, 1500)
	if err != nil {
		t.Fatal(err)
	}
	lam, mu := 1/dual.MTTFHours, 1/dual.MTTRHours
	c := float64(dual.C)
	k := (1 + mu/(c*lam)) / ((c - 1) * lam)
	t2 := (1 + 2*mu*k) / ((c - 2) * lam)
	exact := 1/(c*lam) + k + t2
	if diff := math.Abs(d.MTTDLHours - exact); diff > 4*d.StdErrHours {
		t.Fatalf("P+Q MTTDL %.3g ± %.2g, Markov exact %.3g (off by %.1f σ)",
			d.MTTDLHours, d.StdErrHours, exact, diff/d.StdErrHours)
	}
	// The gain over single parity is the 2-fault term — roughly
	// 2·MTTF/((C−2)·MTTR) ≈ 105 here.
	single := dual
	single.Parities = 0
	s, err := SimulateMTTDL(single, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if gain := d.MTTDLHours / s.MTTDLHours; gain < 50 || gain > 220 {
		t.Fatalf("P+Q MTTDL gain %.1f, want ~105 (single %.3g, dual %.3g)",
			gain, s.MTTDLHours, d.MTTDLHours)
	}
}

func TestDualParityAbsorbsLatentErrors(t *testing.T) {
	// Under P+Q a latent error met with one disk down is corrected by the
	// spare parity; only the two-down window is exposed. The same LSE rate
	// that halves single-parity MTTDL must leave the P+Q array well above
	// even the CLEAN single-parity array.
	lseSingle := Params{C: 21, MTTFHours: 1000, MTTRHours: 10, Seed: 12, LSERatePerDiskHour: 1e-3}
	cleanSingle := lseSingle
	cleanSingle.LSERatePerDiskHour = 0
	lseDual := lseSingle
	lseDual.Parities = 2
	s, err := SimulateMTTDL(lseSingle, 2000)
	if err != nil {
		t.Fatal(err)
	}
	c, err := SimulateMTTDL(cleanSingle, 2000)
	if err != nil {
		t.Fatal(err)
	}
	d, err := SimulateMTTDL(lseDual, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if s.MTTDLHours >= c.MTTDLHours {
		t.Fatalf("LSEs did not hurt single parity: %.3g vs clean %.3g", s.MTTDLHours, c.MTTDLHours)
	}
	if d.MTTDLHours <= c.MTTDLHours {
		t.Fatalf("lossy P+Q MTTDL %.3g not above clean single parity %.3g",
			d.MTTDLHours, c.MTTDLHours)
	}
}

func TestDataLossProbability(t *testing.T) {
	p := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 4}
	const mission = 10 * 365.25 * 24
	got, err := DataLossProbability(p, mission, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// Exponential approximation: 1 − exp(−mission/MTTDL).
	mttdl := 150_000.0 * 150_000 / (21 * 20 * 2)
	want := 1 - math.Exp(-mission/mttdl)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("loss probability %.3f, want ~%.3f", got, want)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	p := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 9}
	a, _ := SimulateMTTDL(p, 200)
	b, _ := SimulateMTTDL(p, 200)
	if a != b {
		t.Fatal("same seed, different results")
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{C: 1, MTTFHours: 1, MTTRHours: 1},
		{C: 5, MTTFHours: 0, MTTRHours: 1},
		{C: 5, MTTFHours: 1, MTTRHours: 0},
	}
	bad = append(bad,
		Params{C: 5, MTTFHours: 1, MTTRHours: 1, LSERatePerDiskHour: -1},
		Params{C: 5, MTTFHours: 1, MTTRHours: 1, ScrubIntervalHours: -1},
		Params{C: 5, MTTFHours: 1, MTTRHours: 1, RepairDist: RepairDist(9)},
		Params{C: 5, MTTFHours: 1, MTTRHours: 1, Parities: 3},
		Params{C: 2, MTTFHours: 1, MTTRHours: 1, Parities: 2},
	)
	for i, p := range bad {
		if _, err := SimulateMTTDL(p, 10); err == nil {
			t.Errorf("params %d accepted", i)
		}
	}
	if _, err := SimulateMTTDL(Params{C: 5, MTTFHours: 1, MTTRHours: 1}, 0); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := DataLossProbability(Params{C: 5, MTTFHours: 1, MTTRHours: 1}, 0, 10); err == nil {
		t.Error("zero mission accepted")
	}
}
