package reliability

import (
	"math"
	"testing"

	"declust/internal/analytic"
)

func TestSimulatedMTTDLMatchesAnalytic(t *testing.T) {
	// With MTTR << MTTF the closed form MTTF²/(C(C−1)·MTTR) is accurate;
	// the Monte Carlo must agree within a few standard errors.
	p := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 1}
	res, err := SimulateMTTDL(p, 3000)
	if err != nil {
		t.Fatal(err)
	}
	want := 150_000.0 * 150_000 / (21 * 20 * 2)
	diff := math.Abs(res.MTTDLHours - want)
	if diff > 4*res.StdErrHours {
		t.Fatalf("simulated MTTDL %.3g ± %.2g, analytic %.3g (off by %.1f σ)",
			res.MTTDLHours, res.StdErrHours, want, diff/res.StdErrHours)
	}
	// Cross-check against the analytic package itself.
	a, err := analytic.Reliability{C: 21, MTTFHours: 150_000, MTTRHours: 2}.MTTDLHours()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-want) > 1e-6 {
		t.Fatalf("analytic package disagrees with formula: %v vs %v", a, want)
	}
}

func TestExponentialRepairMatchesAnalytic(t *testing.T) {
	// The exponential-repair Markov model's exact MTTDL is
	// ((2C−1)λ+μ)/(C(C−1)λ²) with λ=1/MTTF, μ=1/MTTR; for MTTR << MTTF
	// it collapses to the same closed form the analytic package uses.
	// Cross-validate the simulation against both within tolerance.
	p := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 5, RepairDist: ExponentialRepair}
	res, err := SimulateMTTDL(p, 4000)
	if err != nil {
		t.Fatal(err)
	}
	lam, mu := 1/p.MTTFHours, 1/p.MTTRHours
	exact := ((2*21-1)*lam + mu) / (21 * 20 * lam * lam)
	if diff := math.Abs(res.MTTDLHours - exact); diff > 4*res.StdErrHours {
		t.Fatalf("exponential-repair MTTDL %.3g ± %.2g, Markov exact %.3g (off by %.1f σ)",
			res.MTTDLHours, res.StdErrHours, exact, diff/res.StdErrHours)
	}
	a, err := analytic.Reliability{C: 21, MTTFHours: 150_000, MTTRHours: 2}.MTTDLHours()
	if err != nil {
		t.Fatal(err)
	}
	// The approximation itself is within a fraction of a percent here;
	// the simulation should sit within 5% of it.
	if rel := math.Abs(res.MTTDLHours-a) / a; rel > 0.05 {
		t.Fatalf("exponential-repair MTTDL %.3g vs closed form %.3g (%.1f%% off)",
			res.MTTDLHours, a, 100*rel)
	}
}

func TestLatentErrorsLowerMTTDL(t *testing.T) {
	base := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 6}
	clean, err := SimulateMTTDL(base, 2000)
	if err != nil {
		t.Fatal(err)
	}
	lsy := base
	lsy.LSERatePerDiskHour = 1e-5
	lossy, err := SimulateMTTDL(lsy, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if lossy.MTTDLHours >= clean.MTTDLHours/2 {
		t.Fatalf("LSEs barely moved MTTDL: %.3g vs clean %.3g",
			lossy.MTTDLHours, clean.MTTDLHours)
	}
}

func TestScrubbingRaisesMTTDL(t *testing.T) {
	// The acceptance claim: at a fixed LSE rate, scrubbing measurably
	// raises MTTDL by bounding how long errors lie latent.
	base := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 7, LSERatePerDiskHour: 1e-5}
	unscrubbed, err := SimulateMTTDL(base, 2000)
	if err != nil {
		t.Fatal(err)
	}
	scrubbed := base
	scrubbed.ScrubIntervalHours = 168 // weekly
	s, err := SimulateMTTDL(scrubbed, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if s.MTTDLHours < 2*unscrubbed.MTTDLHours {
		t.Fatalf("weekly scrub MTTDL %.3g not measurably above unscrubbed %.3g",
			s.MTTDLHours, unscrubbed.MTTDLHours)
	}
	// More frequent scrubbing helps more.
	daily := base
	daily.ScrubIntervalHours = 24
	d, err := SimulateMTTDL(daily, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if d.MTTDLHours <= s.MTTDLHours {
		t.Fatalf("daily scrub MTTDL %.3g not above weekly %.3g", d.MTTDLHours, s.MTTDLHours)
	}
}

func TestShorterRepairImprovesReliability(t *testing.T) {
	// The whole reason reconstruction time matters (paper §2/§8).
	fast, err := SimulateMTTDL(Params{C: 21, MTTFHours: 150_000, MTTRHours: 0.5, Seed: 2}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SimulateMTTDL(Params{C: 21, MTTFHours: 150_000, MTTRHours: 4, Seed: 2}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	// 8x shorter repair should be roughly 8x the MTTDL.
	ratio := fast.MTTDLHours / slow.MTTDLHours
	if ratio < 5 || ratio > 12 {
		t.Fatalf("MTTDL ratio %.1f for 8x repair speedup, want ~8", ratio)
	}
}

func TestMoreDisksHurtReliability(t *testing.T) {
	small, err := SimulateMTTDL(Params{C: 11, MTTFHours: 150_000, MTTRHours: 2, Seed: 3}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	big, err := SimulateMTTDL(Params{C: 41, MTTFHours: 150_000, MTTRHours: 2, Seed: 3}, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if big.MTTDLHours >= small.MTTDLHours {
		t.Fatalf("41 disks MTTDL %.3g not below 11 disks %.3g", big.MTTDLHours, small.MTTDLHours)
	}
}

func TestDataLossProbability(t *testing.T) {
	p := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 4}
	const mission = 10 * 365.25 * 24
	got, err := DataLossProbability(p, mission, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// Exponential approximation: 1 − exp(−mission/MTTDL).
	mttdl := 150_000.0 * 150_000 / (21 * 20 * 2)
	want := 1 - math.Exp(-mission/mttdl)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("loss probability %.3f, want ~%.3f", got, want)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	p := Params{C: 21, MTTFHours: 150_000, MTTRHours: 2, Seed: 9}
	a, _ := SimulateMTTDL(p, 200)
	b, _ := SimulateMTTDL(p, 200)
	if a != b {
		t.Fatal("same seed, different results")
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{C: 1, MTTFHours: 1, MTTRHours: 1},
		{C: 5, MTTFHours: 0, MTTRHours: 1},
		{C: 5, MTTFHours: 1, MTTRHours: 0},
	}
	bad = append(bad,
		Params{C: 5, MTTFHours: 1, MTTRHours: 1, LSERatePerDiskHour: -1},
		Params{C: 5, MTTFHours: 1, MTTRHours: 1, ScrubIntervalHours: -1},
		Params{C: 5, MTTFHours: 1, MTTRHours: 1, RepairDist: RepairDist(9)},
	)
	for i, p := range bad {
		if _, err := SimulateMTTDL(p, 10); err == nil {
			t.Errorf("params %d accepted", i)
		}
	}
	if _, err := SimulateMTTDL(Params{C: 5, MTTFHours: 1, MTTRHours: 1}, 0); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := DataLossProbability(Params{C: 5, MTTFHours: 1, MTTRHours: 1}, 0, 10); err == nil {
		t.Error("zero mission accepted")
	}
}
