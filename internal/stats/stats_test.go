package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		var w Welford
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			w.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		varr := 0.0
		for _, x := range xs {
			varr += (x - mean) * (x - mean)
		}
		varr /= float64(n - 1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Var()-varr) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Fatal("zero Welford not zero")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Var() != 0 || w.Min() != 42 || w.Max() != 42 {
		t.Fatalf("single-sample stats wrong: %v", w.String())
	}
}

func TestWelfordExtrema(t *testing.T) {
	var w Welford
	for _, x := range []float64{3, -1, 7, 0} {
		w.Add(x)
	}
	if w.Min() != -1 || w.Max() != 7 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {90, 90.1},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSamplePercentileEmpty(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 {
		t.Fatal("empty percentile not 0")
	}
}

func TestSampleAddAfterPercentile(t *testing.T) {
	var s Sample
	s.Add(5)
	_ = s.Percentile(50)
	s.Add(1) // must re-sort
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v after late add, want 1", got)
	}
}

func TestSampleMeanStd(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.Std()-2.138) > 0.001 {
		t.Fatalf("std = %v, want ~2.138", s.Std())
	}
}

func TestTail(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	w := s.Tail(3)
	if w.N() != 3 || w.Mean() != 9 {
		t.Fatalf("tail(3): n=%d mean=%v, want 3/9", w.N(), w.Mean())
	}
	if s.Tail(100).N() != 10 {
		t.Fatal("tail larger than sample should cover all")
	}
}

// Regression: Percentile used to sort xs in place, so a prior percentile
// query turned Tail(k) ("last k observations") into "largest k".
func TestSampleTailAfterPercentile(t *testing.T) {
	var s Sample
	// Descending insertion order: the last 3 are the 3 smallest, so an
	// in-place sort would flip Tail's answer completely.
	for _, x := range []float64{9, 8, 7, 6, 5, 4, 3, 2, 1} {
		s.Add(x)
	}
	if got := s.Percentile(50); got != 5 {
		t.Fatalf("Percentile(50) = %v, want 5", got)
	}
	tail := s.Tail(3)
	if tail.Mean() != 2 || tail.Min() != 1 || tail.Max() != 3 {
		t.Fatalf("Tail(3) after Percentile = mean %v min %v max %v, want last-3 (mean 2, min 1, max 3)",
			tail.Mean(), tail.Min(), tail.Max())
	}
	// The sorted cache must invalidate on Add.
	s.Add(0)
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("Percentile(0) after Add = %v, want 0", got)
	}
	if tail := s.Tail(2); tail.Max() != 1 || tail.Min() != 0 {
		t.Fatalf("Tail(2) = [%v,%v], want last-2 {1,0}", tail.Min(), tail.Max())
	}
}
