// Package stats provides the small statistical kit the simulations need:
// streaming mean/variance (Welford), retained samples with percentiles,
// and warmup trimming.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a streaming mean and variance without retaining
// samples. The zero value is an empty accumulator.
type Welford struct {
	n          int64
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add accumulates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
	if !w.hasExtrema || x < w.min {
		w.min = x
	}
	if !w.hasExtrema || x > w.max {
		w.max = x
	}
	w.hasExtrema = true
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation, or 0 with none.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 with none.
func (w *Welford) Max() float64 { return w.max }

func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.3g std=%.3g", w.n, w.Mean(), w.Std())
}

// Sample retains observations for percentile queries. The zero value is
// ready to use. xs stays in insertion order so Tail sees the most recent
// observations; percentile queries sort a cached copy instead.
type Sample struct {
	xs     []float64
	sorted []float64 // cached sort of xs; nil when stale
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = nil
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean, or 0 when empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		sum += (x - m) * (x - m)
	}
	return math.Sqrt(sum / float64(n-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation, or 0 when empty.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if s.sorted == nil {
		s.sorted = append([]float64(nil), s.xs...)
		sort.Float64s(s.sorted)
	}
	xs := s.sorted
	if p <= 0 {
		return xs[0]
	}
	if p >= 100 {
		return xs[len(xs)-1]
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(xs) {
		return xs[len(xs)-1]
	}
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}

// Tail returns a Welford over the last k observations (all if k >= N);
// the paper's Table 8-1 reports means and deviations over the final 300
// reconstruction cycles.
func (s *Sample) Tail(k int) *Welford {
	w := &Welford{}
	start := len(s.xs) - k
	if start < 0 {
		start = 0
	}
	for _, x := range s.xs[start:] {
		w.Add(x)
	}
	return w
}
