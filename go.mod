module declust

go 1.22
