// Quickstart: build a declustered parity mapping, inspect it, and run a
// short reconstruction simulation — the library's core loop in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"declust"
)

func main() {
	// The paper's array: 21 disks. Ask for parity stripes of 5 units,
	// i.e. 20% parity overhead and declustering ratio α = 0.2.
	m, err := declust.NewMapping(21, 5, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mapping: ", m.Describe())

	// The layout provably meets the paper's core criteria.
	crit, err := m.Criteria()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("balanced: every disk pair shares %d parity stripes per table; "+
		"%d parity units per disk per full table\n\n", crit.PairCount, crit.ParityPerDisk)

	// Where does logical data live? The first few units:
	for n := int64(0); n < 4; n++ {
		loc := declust.DataLoc(m.Layout, n)
		fmt.Printf("  data unit %d -> disk %d, unit offset %d\n", n, loc.Disk, loc.Offset)
	}
	fmt.Println()

	// Reconstruct a failed disk under a 210 access/s OLTP-ish load,
	// eight reconstruction processes, redirecting reads as they become
	// available. (1/10-scale disks keep this example quick; drop the
	// Scale fields for the full 311 MB drives.)
	res, err := declust.RunReconstruction(declust.SimConfig{
		C: 21, G: 5,
		ScaleNum: 1, ScaleDen: 10,
		RatePerSec:   210,
		ReadFraction: 0.5,
		Algorithm:    declust.Redirect,
		ReconProcs:   8,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstruction finished in %.1f minutes (1/10-scale disk)\n", res.ReconTimeMS/60_000)
	fmt.Printf("user response during recovery: mean %.1f ms, P90 %.1f ms over %d requests\n",
		res.MeanResponseMS, res.P90ResponseMS, res.Requests)
}
