// Designexplorer: size an array. Given a disk count, walk the feasible
// parity stripe sizes, showing for each the block design the library would
// use, the parity overhead, the declustering ratio, and the predicted
// reconstruction time and reliability — the §2 configuration trade-off a
// system administrator faces at installation time.
//
//	go run ./examples/designexplorer
//	go run ./examples/designexplorer -c 33
package main

import (
	"flag"
	"fmt"
	"log"

	"declust"
)

func main() {
	c := flag.Int("c", 21, "number of disks")
	flag.Parse()

	fmt.Printf("array sizing for C = %d disks (IBM 0661 drives, 210 accesses/s, 50%% reads)\n\n", *c)
	fmt.Printf("%-4s %-7s %-9s %-30s %-12s %-12s\n",
		"G", "alpha", "overhead", "design", "recon (min)", "MTTDL (yrs)")

	for g := 2; g <= *c; g++ {
		m, err := declust.NewMapping(*c, g, 0)
		if err != nil {
			continue
		}
		if m.G != g {
			continue // closest-α fallback would duplicate another row
		}
		source := "RAID 5 left-symmetric"
		if m.Design != nil {
			source = m.Design.Source
		}

		// Predict reconstruction time with the analytic model (fast),
		// then turn it into reliability.
		model := declust.AnalyticModel{
			C: *c, G: g,
			UserRate:     210,
			ReadFraction: 0.5,
			DiskRate:     46,
			UnitsPerDisk: 79716,
		}
		recon, err := model.ReconstructionTime()
		reconStr := "saturated"
		mttdlStr := "-"
		if err == nil {
			reconStr = fmt.Sprintf("%.0f", recon/60)
			rel := declust.Reliability{C: *c, MTTFHours: 150_000, MTTRHours: recon / 3600}
			if mttdl, err := rel.MTTDLHours(); err == nil {
				mttdlStr = fmt.Sprintf("%.0f", mttdl/(24*365.25))
			}
		}
		fmt.Printf("%-4d %-7.2f %-9s %-30s %-12s %-12s\n",
			g, m.Alpha(), fmt.Sprintf("%.0f%%", 100*m.ParityOverhead()), source, reconStr, mttdlStr)
	}

	fmt.Println("\nPick G by trading parity overhead (1/G) against recovery speed and reliability;")
	fmt.Println("simulate the shortlisted points with cmd/raidsim for response-time detail.")
	if _, _, err := declust.SelectDesign(*c, 2, 0); err != nil {
		log.Fatal(err)
	}
}
