// Recovery: compare the paper's four reconstruction algorithms head to
// head, single-threaded and 8-way parallel, on one array configuration —
// the §8.2 study in miniature. It reproduces the paper's surprising
// result: with parallel reconstruction at a low declustering ratio, the
// *simplest* algorithms reconstruct fastest, because keeping user work off
// the replacement disk preserves its cheap sequential writes.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"

	"declust"
)

func main() {
	algorithms := []declust.ReconAlgorithm{
		declust.Baseline, declust.UserWrites, declust.Redirect, declust.RedirectPiggyback,
	}

	fmt.Println("21 disks, G=5 (α=0.2), 210 accesses/s, 50% reads, 1/10-scale disks")
	for _, procs := range []int{1, 8} {
		fmt.Printf("\n%d reconstruction process(es):\n", procs)
		fmt.Printf("  %-20s %-12s %-14s %-24s\n", "algorithm", "recon (min)", "response (ms)", "cycle read+write (ms)")
		for _, alg := range algorithms {
			res, err := declust.RunReconstruction(declust.SimConfig{
				C: 21, G: 5,
				ScaleNum: 1, ScaleDen: 10,
				RatePerSec:   210,
				ReadFraction: 0.5,
				Algorithm:    alg,
				ReconProcs:   procs,
				Seed:         11,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-20s %-12.1f %-14.1f %.0f + %.0f = %.0f\n",
				alg, res.ReconTimeMS/60_000, res.MeanResponseMS,
				res.ReadPhaseMeanMS, res.WritePhaseMeanMS,
				res.ReadPhaseMeanMS+res.WritePhaseMeanMS)
		}
	}
	fmt.Println("\nNote how redirect/piggyback lower the read phase but inflate the write phase:")
	fmt.Println("random user work on the replacement disk destroys the sweep's sequential writes (§8.2).")
}
