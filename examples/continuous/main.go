// Continuous: the paper's title scenario, end to end. The array serves an
// OLTP workload for a long (accelerated) horizon while disks fail at
// random; each failure is replaced and reconstructed online. The example
// compares repair policies (spare installation lag, reconstruction
// parallelism) and reports availability and how response time looks in
// each operating state. Disk aging is accelerated ~100,000x so a
// 20-minute horizon sees many failures; real MTTFs give availability
// with many more nines.
//
//	go run ./examples/continuous
package main

import (
	"fmt"
	"log"

	"declust"
)

func main() {
	base := declust.SimConfig{
		C: 21, G: 5,
		ScaleNum: 1, ScaleDen: 20, // accelerated demo scale
		RatePerSec:   210,
		ReadFraction: 0.5,
		Algorithm:    declust.Redirect,
		Seed:         5,
		// Media faults, accelerated like the aging: latent sector errors
		// arrive, transient timeouts retry, and a background scrubber
		// repairs latent damage before a disk failure can compound it.
		FaultSeed:        5,
		LSERatePerGBHour: 2_000,
		TransientRate:    0.01,
		ScrubIntervalMS:  50,
	}

	fmt.Println("Continuous operation, 21 disks, G=5, 210 accesses/s, 50% reads")
	fmt.Println("accelerated aging: disk MTTF = 0.1 h; horizon = 20 simulated minutes")
	fmt.Println("media faults on: latent sector errors + transient timeouts + scrubbing")
	fmt.Println()
	fmt.Printf("%-26s %-8s %-14s %-30s %-8s %-8s %-8s\n",
		"repair policy", "repairs", "availability", "response ff/deg/recon (ms)", "2nd", "lost", "loss ev")

	policies := []struct {
		label string
		procs int
		delay float64
	}{
		{"hot spare, 8-way recon", 8, 0},
		{"hot spare, 1-way recon", 1, 0},
		{"30 s swap, 8-way recon", 8, 30_000},
	}
	for _, p := range policies {
		cfg := base
		cfg.ReconProcs = p.procs
		rep, err := declust.RunLifecycle(declust.LifecycleConfig{
			Sim:                cfg,
			MTTFHours:          0.1,
			ReplacementDelayMS: p.delay,
			DurationMS:         20 * 60_000,
			FailureSeed:        77,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %-8d %-14s %-30s %-8d %-8d %-8d\n",
			p.label, rep.Failures,
			fmt.Sprintf("%.2f%%", 100*rep.Availability),
			fmt.Sprintf("%.0f / %.0f / %.0f", rep.FaultFreeResponseMS, rep.DegradedResponseMS, rep.ReconResponseMS),
			rep.DoubleFailures+rep.ReplacementFailures, rep.StripesLost, rep.DataLossEvents)
	}
	fmt.Println("\n'2nd' counts failure arrivals while already degraded (second disks and")
	fmt.Println("dying replacements); 'lost' counts stripes that lost two units, and")
	fmt.Println("'loss ev' every recorded data-loss event (double failures plus latent")
	fmt.Println("sector errors struck while unprotected) — the exposure that fast")
	fmt.Println("reconstruction and scrubbing exist to shrink (paper §2).")
}
