// Continuous: the paper's title scenario, end to end. The array serves an
// OLTP workload for a long (accelerated) horizon while disks fail at
// random; each failure is replaced and reconstructed online. The example
// compares repair policies (spare installation lag, reconstruction
// parallelism) and reports availability and how response time looks in
// each operating state. Disk aging is accelerated ~100,000x so a
// 20-minute horizon sees many failures; real MTTFs give availability
// with many more nines.
//
//	go run ./examples/continuous
package main

import (
	"fmt"
	"log"

	"declust"
)

func main() {
	base := declust.SimConfig{
		C: 21, G: 5,
		ScaleNum: 1, ScaleDen: 20, // accelerated demo scale
		RatePerSec:   210,
		ReadFraction: 0.5,
		Algorithm:    declust.Redirect,
		Seed:         5,
	}

	fmt.Println("Continuous operation, 21 disks, G=5, 210 accesses/s, 50% reads")
	fmt.Println("accelerated aging: disk MTTF = 0.1 h; horizon = 20 simulated minutes")
	fmt.Println()
	fmt.Printf("%-26s %-8s %-14s %-30s %-8s\n",
		"repair policy", "repairs", "availability", "response ff/deg/recon (ms)", "risks")

	policies := []struct {
		label string
		procs int
		delay float64
	}{
		{"hot spare, 8-way recon", 8, 0},
		{"hot spare, 1-way recon", 1, 0},
		{"30 s swap, 8-way recon", 8, 30_000},
	}
	for _, p := range policies {
		cfg := base
		cfg.ReconProcs = p.procs
		rep, err := declust.RunLifecycle(declust.LifecycleConfig{
			Sim:                cfg,
			MTTFHours:          0.1,
			ReplacementDelayMS: p.delay,
			DurationMS:         20 * 60_000,
			FailureSeed:        77,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %-8d %-14s %-30s %-8d\n",
			p.label, rep.Failures,
			fmt.Sprintf("%.2f%%", 100*rep.Availability),
			fmt.Sprintf("%.0f / %.0f / %.0f", rep.FaultFreeResponseMS, rep.DegradedResponseMS, rep.ReconResponseMS),
			rep.DoubleFaultRisks)
	}
	fmt.Println("\n'risks' counts failure arrivals while already degraded — the exposure")
	fmt.Println("window that fast reconstruction exists to shrink (paper §2).")
}
