// OLTP: the workload the paper's introduction motivates. An on-line
// transaction processing system must keep 90% of transactions under two
// seconds even while a disk is down (the Anon85/TPC-A rule of thumb, §3).
// A transaction here costs up to three 4 KB disk accesses, so its storage
// budget is roughly 667 ms per access at P90.
//
// This example sweeps the declustering ratio and reports whether the array
// still meets the OLTP budget in the fault-free state, in degraded mode,
// and during an 8-way parallel reconstruction.
//
//	go run ./examples/oltp
package main

import (
	"fmt"
	"log"

	"declust"
)

const (
	diskAccessBudgetMS = 2000.0 / 3 // two-second rule over <=3 accesses
	rate               = 210        // user accesses per second
)

func main() {
	fmt.Printf("OLTP check: 21 disks, %d accesses/s, 50%% reads; P90 per-access budget %.0f ms\n\n",
		rate, diskAccessBudgetMS)
	fmt.Printf("%-7s %-9s %-22s %-22s %-26s\n", "alpha", "overhead",
		"fault-free P90 (ms)", "degraded P90 (ms)", "recovering P90 (ms)")

	for _, g := range []int{4, 5, 6, 10, 21} {
		cfg := declust.SimConfig{
			C: 21, G: g,
			ScaleNum: 1, ScaleDen: 10, // quick demo scale
			RatePerSec:   rate,
			ReadFraction: 0.5,
			Algorithm:    declust.Redirect,
			ReconProcs:   8,
			Seed:         7,
			MeasureMS:    60_000,
		}
		ff, err := declust.RunFaultFree(cfg)
		if err != nil {
			log.Fatal(err)
		}
		dg, err := declust.RunDegraded(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rc, err := declust.RunReconstruction(cfg)
		if err != nil {
			log.Fatal(err)
		}
		alpha := float64(g-1) / 20
		fmt.Printf("%-7.2f %-9s %-22s %-22s %-26s\n",
			alpha, fmt.Sprintf("%.0f%%", 100.0/float64(g)),
			verdict(ff.P90ResponseMS), verdict(dg.P90ResponseMS),
			fmt.Sprintf("%s (recovery %.0f min)", verdict(rc.P90ResponseMS), rc.ReconTimeMS/60_000))
	}
	fmt.Println("\nLower α holds response down through failure and recovery; the cost is parity overhead 1/G.")
}

func verdict(p90 float64) string {
	mark := "ok"
	if p90 > diskAccessBudgetMS {
		mark = "OVER"
	}
	return fmt.Sprintf("%.0f %s", p90, mark)
}
